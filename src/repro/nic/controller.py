"""Cycle-level NIC controller (the micro tier).

Wires the Figure 6 computation/memory architecture at cycle resolution:
``cores`` 5-stage pipelined cores with private I-caches fed from the
shared instruction memory, all reaching a banked scratchpad through the
round-robin crossbar.  Runs real assembled MIPS programs — the firmware
kernels — and reports the same per-category stall statistics the
macro-tier cost model produces, which is how the two tiers are
cross-validated (see ``tests/test_cross_validation.py``).

Frame-data SDRAM and the assists are not part of this tier: the paper's
processors never touch frame data, so the micro tier models exactly
what the cores see — instructions and control data.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cpu.core import CoreStats, LockstepSystem, PipelinedCore
from repro.isa.assembler import Program
from repro.mem.icache import InstructionCache
from repro.mem.imem import InstructionMemory
from repro.mem.scratchpad import Scratchpad
from repro.nic.config import NicConfig


class MicroNic:
    """N cores + banked scratchpad + instruction memory, cycle by cycle."""

    def __init__(
        self,
        config: NicConfig,
        program: Program,
        entries: Optional[List[str]] = None,
        shared_memory=None,
        tracer=None,
    ) -> None:
        """``shared_memory`` lets callers substitute a device-mapped
        memory (:class:`~repro.nic.microdev.DeviceMemory`) so firmware
        can drive the memory-mapped hardware assists.

        ``tracer`` (a :class:`repro.obs.Tracer`) records one span per
        core on ``micro-core<N>`` tracks when :meth:`run` finishes,
        timestamped in core cycles, carrying the per-core stall
        breakdown as span arguments."""
        from repro.obs.tracer import NULL_TRACER

        self.tracer = tracer if tracer is not None else NULL_TRACER
        if entries is not None and len(entries) != config.cores:
            raise ValueError(
                f"need one entry point per core ({config.cores}), got {len(entries)}"
            )
        self.config = config
        self.program = program
        self.scratchpad = Scratchpad(
            banks=config.scratchpad_banks,
            capacity_bytes=config.scratchpad_bytes,
            memory=shared_memory,
        )
        self.imem = InstructionMemory(capacity_bytes=config.imem_bytes)
        self.cores: List[PipelinedCore] = []
        for core_id in range(config.cores):
            icache = InstructionCache(
                capacity_bytes=config.icache_bytes,
                associativity=config.icache_associativity,
                line_bytes=config.icache_line_bytes,
            )
            entry = entries[core_id] if entries else None
            core = PipelinedCore(
                program,
                self.scratchpad,
                imem=self.imem,
                icache=icache,
                core_id=core_id,
                entry=entry,
                shared_memory=self.scratchpad.memory,
            )
            self.cores.append(core)
        self.system = LockstepSystem(self.cores)

    def run(self, max_steps: int = 20_000_000) -> List[CoreStats]:
        """Run every core to its halt; returns per-core statistics."""
        stats = self.system.run(max_steps=max_steps)
        if self.tracer.enabled:
            for core_id, core_stats in enumerate(stats):
                self.tracer.complete(
                    f"micro-core{core_id}",
                    "run",
                    0,
                    int(core_stats.cycles),
                    instructions=core_stats.instructions,
                    imiss_stalls=core_stats.imiss_stalls,
                    load_stalls=core_stats.load_stalls,
                    conflict_stalls=core_stats.conflict_stalls,
                    pipeline_stalls=core_stats.pipeline_stalls,
                )
        return stats

    # -- aggregate views --------------------------------------------------
    def combined_stats(self) -> CoreStats:
        total = CoreStats()
        for core in self.cores:
            stats = core.stats
            total.instructions += stats.instructions
            total.cycles += stats.cycles
            total.imiss_stalls += stats.imiss_stalls
            total.load_stalls += stats.load_stalls
            total.conflict_stalls += stats.conflict_stalls
            total.pipeline_stalls += stats.pipeline_stalls
        return total

    @property
    def scratchpad_accesses(self) -> int:
        return self.scratchpad.accesses
