"""NIC controller configuration (the knobs of Figure 6).

The paper's headline configurations:

* ``SOFTWARE_200MHZ`` — 6 cores + 4 banks at 200 MHz, lock-based frame
  ordering (the "software-only" columns of Tables 5 and 6);
* ``RMW_166MHZ`` — 6 cores + 4 banks at 166 MHz with the ``setb`` /
  ``update`` instructions (the "RMW-enhanced" columns); the RMW savings
  are what allow the 17% clock reduction at line rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cpu.costmodel import CoreCostModel
from repro.firmware.ordering import OrderingMode
from repro.firmware.profiles import FirmwareProfiles
from repro.units import KIB, mhz, seconds_to_ps


@dataclass(frozen=True)
class NicConfig:
    """Full architectural + firmware configuration."""

    # Computation (Figure 6, Section 4).
    cores: int = 6
    core_frequency_hz: float = mhz(166)
    scratchpad_banks: int = 4
    scratchpad_bytes: int = 256 * KIB
    icache_bytes: int = 8 * KIB
    icache_associativity: int = 2
    icache_line_bytes: int = 32
    imem_bytes: int = 128 * KIB

    # Frame memory (Section 2.3).
    sdram_frequency_hz: float = mhz(500)
    sdram_width_bits: int = 64
    tx_buffer_bytes: int = 256 * KIB
    rx_buffer_bytes: int = 256 * KIB

    # Host interface.
    dma_latency_s: float = 1.2e-6
    send_ring_capacity: int = 512       # descriptors (2 per frame)
    recv_ring_capacity: int = 256
    recv_bd_low_water: int = 32
    interrupt_coalesce_frames: int = 8

    # Firmware organization.
    ordering_mode: OrderingMode = OrderingMode.RMW
    ordering_ring: int = 1024           # status bitmap entries per board
    tx_bd_buffer_frames: int = 48       # scratchpad send-BD staging capacity
    send_batch_max: int = 8             # frames per send_frame event
    recv_batch_max: int = 8
    firmware: FirmwareProfiles = field(default_factory=FirmwareProfiles)
    cost_model: CoreCostModel = field(default_factory=CoreCostModel)
    task_level_firmware: bool = False   # event-register baseline (ablation)
    # Section 8 extension: IP/UDP checksum handling.
    #   "none"     — checksums left to the host (the paper's baseline);
    #   "assist"   — MAC/DMA engines fold the checksum into the data
    #                stream; firmware only checks a status word;
    #   "firmware" — cores touch every payload word (quantifies why
    #                payload-touching services need hardware assists).
    checksum_offload: str = "none"

    # Assist control-data traffic (scratchpad accesses per unit of work;
    # calibrated against Table 4's 41.7 M assist accesses/s).
    assist_accesses_per_dma: int = 9     # command words read + status write
    assist_accesses_per_mac_frame: int = 8

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if self.scratchpad_banks < 1:
            raise ValueError("need at least one scratchpad bank")
        if self.send_batch_max < 1 or self.recv_batch_max < 1:
            raise ValueError("batch sizes must be positive")
        if self.ordering_ring % 32:
            raise ValueError("ordering ring must be a multiple of 32")
        if self.checksum_offload not in ("none", "assist", "firmware"):
            raise ValueError(
                f"checksum_offload must be none/assist/firmware, "
                f"got {self.checksum_offload!r}"
            )

    @property
    def dma_latency_ps(self) -> int:
        return seconds_to_ps(self.dma_latency_s)

    def with_cores(self, cores: int) -> "NicConfig":
        return replace(self, cores=cores)

    def with_frequency(self, frequency_hz: float) -> "NicConfig":
        return replace(self, core_frequency_hz=frequency_hz)

    def with_ordering(self, mode: OrderingMode) -> "NicConfig":
        return replace(self, ordering_mode=mode)

    @property
    def label(self) -> str:
        mode = "sw" if self.ordering_mode is OrderingMode.SOFTWARE else "rmw"
        return (
            f"{self.cores}x{self.core_frequency_hz / 1e6:.0f}MHz-"
            f"{self.scratchpad_banks}banks-{mode}"
        )


SOFTWARE_200MHZ = NicConfig(
    cores=6,
    core_frequency_hz=mhz(200),
    ordering_mode=OrderingMode.SOFTWARE,
)

RMW_166MHZ = NicConfig(
    cores=6,
    core_frequency_hz=mhz(166),
    ordering_mode=OrderingMode.RMW,
)
