"""Top-level NIC controller models.

* :class:`~repro.nic.config.NicConfig` — every architectural parameter
  of Figure 6 in one place (cores, banks, frequencies, caches, SDRAM,
  rings, firmware variant).
* :class:`~repro.nic.throughput.ThroughputSimulator` — the event-driven
  full-system simulator behind Figures 7/8 and Tables 3/4/5/6.
* :mod:`repro.nic.controller` — the cycle-level micro tier that runs
  real assembled firmware kernels on the full memory system.
"""

from repro.nic.config import NicConfig, SOFTWARE_200MHZ, RMW_166MHZ
from repro.nic.controller import MicroNic
from repro.nic.throughput import ThroughputResult, ThroughputSimulator

__all__ = [
    "MicroNic",
    "NicConfig",
    "RMW_166MHZ",
    "SOFTWARE_200MHZ",
    "ThroughputResult",
    "ThroughputSimulator",
]
