"""Functional (untimed) reference model of the frame-parallel firmware.

This is the firmware's *logic* with all timing stripped out: frames
advance through the send/receive stages of Figures 1 and 2, stage
completions may arrive in any order (that is the whole point of
frame-level parallelism), and the ordering boards restore total frame
order at the commit points.

The timed throughput simulator embeds the same ordering boards; this
model exists so the logic can be tested exhaustively (including with
hypothesis-generated adversarial completion orders) without simulating
time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.firmware.ordering import OrderingBoard, OrderingMode


class SendStage(enum.Enum):
    POSTED = 0         # driver created buffer descriptors
    BD_FETCHED = 1     # descriptors DMAed into scratchpad
    DMA_ISSUED = 2     # frame-data DMA in flight to the tx buffer
    DATA_READY = 3     # frame bytes in SDRAM, done bit set
    COMMITTED = 4      # in-order hand-off to the MAC
    TRANSMITTED = 5    # on the wire; driver notified


class RecvStage(enum.Enum):
    ARRIVED = 0        # MAC stored the frame in the rx buffer
    DMA_ISSUED = 1     # frame-data DMA in flight to host memory
    DMA_DONE = 2       # data in host memory, done bit set
    COMMITTED = 3      # in-order descriptor writeback / notify


@dataclass
class FrameRecord:
    seq: int
    stage: object

    def advance(self, new_stage: object) -> None:
        if new_stage.value <= self.stage.value:
            raise ValueError(
                f"frame {self.seq}: cannot move from {self.stage} to {new_stage}"
            )
        self.stage = new_stage


class SendPath:
    """Functional send pipeline with out-of-order stage completion."""

    def __init__(self, mode: OrderingMode, ring_size: int = 256) -> None:
        self.board = OrderingBoard(ring_size, mode)
        self.frames: Dict[int, FrameRecord] = {}
        self.next_seq = 0
        self.commit_order: List[int] = []

    def post(self, count: int = 1) -> List[int]:
        """Driver posts descriptors for ``count`` new frames."""
        seqs = []
        for _ in range(count):
            seq = self.next_seq
            self.frames[seq] = FrameRecord(seq, SendStage.POSTED)
            self.next_seq += 1
            seqs.append(seq)
        return seqs

    def fetch_bds(self, seqs: List[int]) -> None:
        for seq in seqs:
            self.frames[seq].advance(SendStage.BD_FETCHED)

    def issue_dma(self, seq: int) -> None:
        self.frames[seq].advance(SendStage.DMA_ISSUED)

    def dma_complete(self, seq: int) -> None:
        """Frame data landed in SDRAM — may happen in any order."""
        frame = self.frames[seq]
        frame.advance(SendStage.DATA_READY)
        self.board.mark_done(seq)

    def commit(self) -> List[int]:
        """Advance the MAC-visible pointer across consecutive ready frames."""
        before = self.board.commit_seq
        count, _cost = self.board.commit()
        committed = list(range(before, before + count))
        for seq in committed:
            self.frames[seq].advance(SendStage.COMMITTED)
            self.commit_order.append(seq)
        return committed

    def transmit(self, seq: int) -> None:
        frame = self.frames[seq]
        if frame.stage is not SendStage.COMMITTED:
            raise ValueError(f"frame {seq} transmitted before commit")
        frame.advance(SendStage.TRANSMITTED)
        del self.frames[seq]


class RecvPath:
    """Functional receive pipeline with out-of-order stage completion."""

    def __init__(self, mode: OrderingMode, ring_size: int = 256) -> None:
        self.board = OrderingBoard(ring_size, mode)
        self.frames: Dict[int, FrameRecord] = {}
        self.next_seq = 0
        self.commit_order: List[int] = []

    def arrive(self, count: int = 1) -> List[int]:
        seqs = []
        for _ in range(count):
            seq = self.next_seq
            self.frames[seq] = FrameRecord(seq, RecvStage.ARRIVED)
            self.next_seq += 1
            seqs.append(seq)
        return seqs

    def issue_dma(self, seq: int) -> None:
        self.frames[seq].advance(RecvStage.DMA_ISSUED)

    def dma_complete(self, seq: int) -> None:
        frame = self.frames[seq]
        frame.advance(RecvStage.DMA_DONE)
        self.board.mark_done(seq)

    def commit(self) -> List[int]:
        before = self.board.commit_seq
        count, _cost = self.board.commit()
        committed = list(range(before, before + count))
        for seq in committed:
            self.frames[seq].advance(RecvStage.COMMITTED)
            self.commit_order.append(seq)
            del self.frames[seq]
        return committed
