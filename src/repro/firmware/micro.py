"""End-to-end receive firmware for the cycle-level micro NIC.

This is the repository's deepest-fidelity demonstration: real MIPS
assembly firmware, running on the cycle-level multi-core model
(:class:`~repro.nic.controller.MicroNic`), driving the memory-mapped
hardware assists of :mod:`repro.nic.microdev` through a complete
receive path:

1. claim the next arriving frame with an ll/sc fetch-and-increment
   (frame-level parallelism: any core takes any frame);
2. poll the MAC's ``RX_PROD`` progress pointer until the frame has
   landed in the receive buffer;
3. program the DMA-write assist (``DMA_CMD``) to move it to the host
   and poll ``DMA_PROD`` for completion;
4. mark the frame done with the paper's atomic ``setb``;
5. harvest consecutive done frames with ``update`` and publish the
   in-order commit pointer to the hardware (``RX_CONS``).

Cores race on every shared structure; total frame ordering at the
hardware pointer is the invariant under test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.assembler import Program, assemble
from repro.nic.config import NicConfig
from repro.nic.microdev import DEVICE_BASE, DeviceMemory

# Ordering blocks for the receive firmware, in both of the paper's
# variants.  Both mark the claimed frame ($t1) done and then harvest
# the consecutive run, publishing commitptr and the RX_CONS hardware
# pointer; only the mechanism differs.
_ORDER_RMW_BLOCK = """
        la   $t6, bitmap           # mark this frame done, atomically
        setb $t6, $t1

commit:                            # harvest the consecutive run
        la   $t7, commitptr
        lw   $t8, 0($t7)
        addiu $t9, $t8, -1
        la   $t6, bitmap
commit_scan:
        update $t2, $t6, $t9
        subu $t3, $t2, $t9
        bgtz $t3, commit_scan
        move $t9, $t2
        addiu $t9, $t9, 1
        ble  $t9, $t8, claim_loop  # no progress: nothing to publish
        nop
        sw   $t9, 0($t7)           # publish the software commit pointer
        sw   $t9, 4($s0)           # RX_CONS: in-order hand-off to hw
        b    claim_loop
        nop
"""

_ORDER_SW_BLOCK = """
        # -- mark under the ordering spinlock --------------------------
        la   $t0, olock
mark_spin:
        ll   $t2, 0($t0)
        bnez $t2, mark_spin
        nop
        li   $t2, 1
        sc   $t2, 0($t0)
        beqz $t2, mark_spin
        nop
        la   $t6, bitmap
        srl  $t3, $t1, 5           # word index
        sll  $t3, $t3, 2
        addu $t6, $t6, $t3
        andi $t4, $t1, 31
        li   $t5, 1
        sllv $t5, $t4, $t5
        lw   $t2, 0($t6)
        or   $t2, $t2, $t5
        sw   $t2, 0($t6)
        sw   $zero, 0($t0)         # release

commit:                            # scan-and-clear under the lock
        la   $t0, olock
commit_spin:
        ll   $t2, 0($t0)
        bnez $t2, commit_spin
        nop
        li   $t2, 1
        sc   $t2, 0($t0)
        beqz $t2, commit_spin
        nop
        la   $t7, commitptr
        lw   $t9, 0($t7)
        move $t8, $t9
commit_scan:
        la   $t6, bitmap
        srl  $t3, $t9, 5
        sll  $t3, $t3, 2
        addu $t6, $t6, $t3
        andi $t4, $t9, 31
        li   $t5, 1
        sllv $t5, $t4, $t5
        lw   $t2, 0($t6)
        and  $t3, $t2, $t5
        beqz $t3, commit_done
        nop
        nor  $t5, $t5, $zero
        and  $t2, $t2, $t5         # clear the bit
        sw   $t2, 0($t6)
        b    commit_scan
        addiu $t9, $t9, 1          # delay slot: next sequence
commit_done:
        sw   $t9, 0($t7)           # publish commit pointer
        la   $t0, olock
        sw   $zero, 0($t0)         # release
        ble  $t9, $t8, claim_loop  # nothing new committed
        nop
        sw   $t9, 4($s0)           # RX_CONS hardware pointer
        b    claim_loop
        nop
"""

_FIRMWARE_TEMPLATE = """
        .text
main:
        li   $s0, {device_base}    # device register window
        li   $s1, {total_frames}   # frames to receive

claim_loop:
        la   $t0, claim
claim_retry:
        ll   $t1, 0($t0)           # t1 = next unclaimed frame
        bge  $t1, $s1, drain       # all frames claimed -> drain commits
        nop
        addiu $t2, $t1, 1
        sc   $t2, 0($t0)
        beqz $t2, claim_retry
        nop

wait_rx:                           # poll the MAC progress pointer
        lw   $t3, 0($s0)           # RX_PROD
        ble  $t3, $t1, wait_rx     # need prod > seq
        nop

        sw   $t1, 8($s0)           # DMA_CMD: move frame to host memory
        lw   $t4, 8($s0)           # snapshot of commands issued so far
wait_dma:
        lw   $t3, 12($s0)          # DMA_PROD
        blt  $t3, $t4, wait_dma    # wait until everything issued so far
        nop                        # (including ours) has completed

{ordering_block}
drain:                             # help until every frame committed
        la   $t7, commitptr
        lw   $t8, 0($t7)
        bge  $t8, $s1, done
        nop
        b    commit
        nop
done:
        halt

        .data
        .align 2
claim:      .word 0
commitptr:  .word 0
olock:      .word 0
bitmap:     .space {bitmap_bytes}
"""

# Ordering blocks for the receive firmware, in both of the paper's
# variants.  Both mark the claimed frame ($t1) done and harvest the
# consecutive run, publishing commitptr and the RX_CONS hardware
# pointer; only the mechanism differs.
_ORDER_RMW_BLOCK = """
        la   $t6, bitmap           # mark this frame done, atomically
        setb $t6, $t1

commit:                            # harvest the consecutive run
        la   $t7, commitptr
        lw   $t8, 0($t7)
        addiu $t9, $t8, -1
        la   $t6, bitmap
commit_scan:
        update $t2, $t6, $t9
        subu $t3, $t2, $t9
        bgtz $t3, commit_scan
        move $t9, $t2
        addiu $t9, $t9, 1
        ble  $t9, $t8, claim_loop  # no progress: nothing to publish
        nop
        sw   $t9, 0($t7)           # publish the software commit pointer
        sw   $t9, 4($s0)           # RX_CONS: in-order hand-off to hw
        b    claim_loop
        nop
"""

# The lock-based equivalent the paper's instructions replace: every
# flag update and every scan runs inside an ll/sc spinlock critical
# section, with a load/test/clear/store loop per committed frame.
_ORDER_SW_BLOCK = """
        la   $t0, olock            # -- mark under the ordering lock --
mark_spin:
        ll   $t2, 0($t0)
        bnez $t2, mark_spin
        nop
        li   $t2, 1
        sc   $t2, 0($t0)
        beqz $t2, mark_spin
        nop
        la   $t6, bitmap
        srl  $t3, $t1, 5           # word index
        sll  $t3, $t3, 2
        addu $t6, $t6, $t3
        andi $t4, $t1, 31
        li   $t5, 1
        sllv $t5, $t4, $t5
        lw   $t2, 0($t6)
        or   $t2, $t2, $t5
        sw   $t2, 0($t6)
        sw   $zero, 0($t0)         # release

commit:                            # scan-and-clear under the lock
        la   $t0, olock
commit_spin:
        ll   $t2, 0($t0)
        bnez $t2, commit_spin
        nop
        li   $t2, 1
        sc   $t2, 0($t0)
        beqz $t2, commit_spin
        nop
        la   $t7, commitptr
        lw   $t9, 0($t7)
        move $t8, $t9
commit_scan:
        la   $t6, bitmap
        srl  $t3, $t9, 5
        sll  $t3, $t3, 2
        addu $t6, $t6, $t3
        andi $t4, $t9, 31
        li   $t5, 1
        sllv $t5, $t4, $t5
        lw   $t2, 0($t6)
        and  $t3, $t2, $t5
        beqz $t3, commit_done
        nop
        nor  $t5, $t5, $zero
        and  $t2, $t2, $t5         # clear the bit
        sw   $t2, 0($t6)
        b    commit_scan
        addiu $t9, $t9, 1          # delay slot: next sequence
commit_done:
        sw   $t9, 0($t7)           # publish commit pointer
        la   $t0, olock
        sw   $zero, 0($t0)         # release
        ble  $t9, $t8, claim_loop  # nothing new committed
        nop
        sw   $t9, 4($s0)           # RX_CONS hardware pointer
        b    claim_loop
        nop
"""


_DUPLEX_TEMPLATE = """
        .text
# ======================================================================
# Receive path (cores entering at main_rx)
# ======================================================================
main_rx:
        li   $s0, {device_base}
        li   $s1, {rx_frames}
rx_claim_loop:
        la   $t0, claim_rx
rx_claim_retry:
        ll   $t1, 0($t0)
        bge  $t1, $s1, rx_drain
        nop
        addiu $t2, $t1, 1
        sc   $t2, 0($t0)
        beqz $t2, rx_claim_retry
        nop
rx_wait_mac:
        lw   $t3, 0x00($s0)        # RX_PROD
        ble  $t3, $t1, rx_wait_mac
        nop
        sw   $t1, 0x08($s0)        # DMA_CMD (to host)
        lw   $t4, 0x08($s0)
rx_wait_dma:
        lw   $t3, 0x0C($s0)        # DMA_PROD
        blt  $t3, $t4, rx_wait_dma
        nop
        la   $t6, bitmap_rx
        setb $t6, $t1
rx_commit:
        la   $t7, commit_rx
        lw   $t8, 0($t7)
        addiu $t9, $t8, -1
        la   $t6, bitmap_rx
rx_commit_scan:
        update $t2, $t6, $t9
        subu $t3, $t2, $t9
        bgtz $t3, rx_commit_scan
        move $t9, $t2
        addiu $t9, $t9, 1
        ble  $t9, $t8, rx_claim_loop
        nop
        sw   $t9, 0($t7)
        sw   $t9, 0x04($s0)        # RX_CONS
        b    rx_claim_loop
        nop
rx_drain:
        la   $t7, commit_rx
        lw   $t8, 0($t7)
        bge  $t8, $s1, rx_done
        nop
        b    rx_commit
        nop
rx_done:
        halt

# ======================================================================
# Transmit path (cores entering at main_tx)
# ======================================================================
main_tx:
        li   $s0, {device_base}
        li   $s1, {tx_frames}
tx_claim_loop:
        la   $t0, claim_tx
tx_claim_retry:
        ll   $t1, 0($t0)
        bge  $t1, $s1, tx_drain
        nop
        addiu $t2, $t1, 1
        sc   $t2, 0($t0)
        beqz $t2, tx_claim_retry
        nop
tx_wait_bd:
        lw   $t3, 0x18($s0)        # TXBD_PROD: descriptors on board?
        bgt  $t3, $t1, tx_have_bd
        nop
        sw   $0, 0x14($s0)         # TXBD_CMD (assist caps outstanding)
        b    tx_wait_bd
        nop
tx_have_bd:
        sw   $t1, 0x1C($s0)        # TXDMA_CMD: pull frame data
        lw   $t4, 0x1C($s0)        # issue-count snapshot
tx_wait_dma:
        lw   $t3, 0x20($s0)        # TXDMA_PROD
        blt  $t3, $t4, tx_wait_dma
        nop
        la   $t6, bitmap_tx
        setb $t6, $t1
tx_commit:
        la   $t7, commit_tx
        lw   $t8, 0($t7)
        addiu $t9, $t8, -1
        la   $t6, bitmap_tx
tx_commit_scan:
        update $t2, $t6, $t9
        subu $t3, $t2, $t9
        bgtz $t3, tx_commit_scan
        move $t9, $t2
        addiu $t9, $t9, 1
        ble  $t9, $t8, tx_claim_loop
        nop
        sw   $t9, 0($t7)
        sw   $t9, 0x24($s0)        # TX_READY: in-order MAC hand-off
        b    tx_claim_loop
        nop
tx_drain:
        la   $t7, commit_tx
        lw   $t8, 0($t7)
        bge  $t8, $s1, tx_wire_wait
        nop
        b    tx_commit
        nop
tx_wire_wait:
        lw   $t3, 0x28($s0)        # TX_DONE: wait for the wire to drain
        blt  $t3, $s1, tx_wire_wait
        nop
        halt

        .data
        .align 2
claim_rx:   .word 0
commit_rx:  .word 0
claim_tx:   .word 0
commit_tx:  .word 0
bitmap_rx:  .space {rx_bitmap_bytes}
bitmap_tx:  .space {tx_bitmap_bytes}
"""


def micro_duplex_firmware(tx_frames: int, rx_frames: int) -> str:
    """Assemblable source for the full-duplex firmware (two entry
    points: ``main_tx`` and ``main_rx``)."""
    if tx_frames < 1 or rx_frames < 1:
        raise ValueError("need at least one frame per direction")
    return _DUPLEX_TEMPLATE.format(
        device_base=DEVICE_BASE,
        tx_frames=tx_frames,
        rx_frames=rx_frames,
        rx_bitmap_bytes=4 * (-(-rx_frames // 32)),
        tx_bitmap_bytes=4 * (-(-tx_frames // 32)),
    )


@dataclass
class MicroDuplexResult:
    """Outcome of a full-duplex micro-tier run."""

    tx_frames: int
    rx_frames: int
    tx_committed: int
    rx_committed: int
    tx_on_wire: int
    rx_consumer: int
    total_cycles: int
    total_instructions: int

    @property
    def completed_in_order(self) -> bool:
        return (
            self.tx_committed == self.tx_frames == self.tx_on_wire
            and self.rx_committed == self.rx_frames == self.rx_consumer
        )


def run_micro_duplex(
    cores: int = 4,
    tx_frames: int = 32,
    rx_frames: int = 32,
    wire_cycles: int = 25,
    dma_latency_cycles: int = 40,
    config: Optional[NicConfig] = None,
) -> MicroDuplexResult:
    """Run both directions concurrently; even cores transmit, odd
    cores receive."""
    from repro.nic.controller import MicroNic  # local import: avoids a cycle

    if cores < 2:
        raise ValueError("full duplex needs at least two cores")
    program = assemble(micro_duplex_firmware(tx_frames, rx_frames))
    device = DeviceMemory(
        total_rx_frames=rx_frames,
        rx_interarrival_cycles=wire_cycles,
        dma_latency_cycles=dma_latency_cycles,
        total_tx_frames=tx_frames,
        tx_wire_cycles=wire_cycles,
    )
    nic_config = config if config is not None else NicConfig(cores=cores)
    entries = ["main_tx" if index % 2 == 0 else "main_rx" for index in range(cores)]
    nic = MicroNic(nic_config, program, entries=entries, shared_memory=device)
    stats = nic.run()

    device.cycle = max(core.cycle for core in nic.cores)
    return MicroDuplexResult(
        tx_frames=tx_frames,
        rx_frames=rx_frames,
        tx_committed=device.load_word(program.address_of("commit_tx")),
        rx_committed=device.load_word(program.address_of("commit_rx")),
        tx_on_wire=device._tx_wire_done(),
        rx_consumer=device.rx_consumer,
        total_cycles=max(core.cycle for core in nic.cores),
        total_instructions=sum(s.instructions for s in stats),
    )


def micro_receive_firmware(total_frames: int, ordering: str = "rmw") -> str:
    """Assemblable source for the receive firmware.

    ``ordering`` selects the frame-ordering implementation: ``"rmw"``
    (the paper's ``setb``/``update`` instructions) or ``"sw"`` (the
    ll/sc spinlock + scan-and-clear loop they replace).
    """
    if total_frames < 1:
        raise ValueError("need at least one frame")
    if ordering not in ("rmw", "sw"):
        raise ValueError(f"ordering must be 'rmw' or 'sw', got {ordering!r}")
    bitmap_words = -(-total_frames // 32)
    block = _ORDER_RMW_BLOCK if ordering == "rmw" else _ORDER_SW_BLOCK
    return _FIRMWARE_TEMPLATE.format(
        device_base=DEVICE_BASE,
        total_frames=total_frames,
        bitmap_bytes=4 * bitmap_words,
        ordering_block=block,
    )


def assemble_micro_receive(total_frames: int, ordering: str = "rmw") -> Program:
    return assemble(micro_receive_firmware(total_frames, ordering))


@dataclass
class MicroReceiveResult:
    """Outcome of one end-to-end micro-tier receive run."""

    frames: int
    committed: int
    rx_consumer: int
    dma_commands: int
    total_cycles: int
    total_instructions: int
    per_core_cycles: List[int]

    @property
    def completed_in_order(self) -> bool:
        return self.committed == self.frames == self.rx_consumer

    @property
    def cycles_per_frame(self) -> float:
        return self.total_cycles / self.frames if self.frames else 0.0


def run_micro_receive(
    cores: int = 4,
    total_frames: int = 64,
    rx_interarrival_cycles: int = 25,
    dma_latency_cycles: int = 40,
    config: Optional[NicConfig] = None,
    ordering: str = "rmw",
) -> MicroReceiveResult:
    """Run the receive firmware end to end; returns the checked result."""
    from repro.nic.controller import MicroNic  # local import: avoids a cycle

    program = assemble_micro_receive(total_frames, ordering)
    device = DeviceMemory(
        total_rx_frames=total_frames,
        rx_interarrival_cycles=rx_interarrival_cycles,
        dma_latency_cycles=dma_latency_cycles,
    )
    nic_config = config if config is not None else NicConfig(cores=cores)
    nic = MicroNic(nic_config, program, shared_memory=device)
    stats = nic.run()

    commit_address = program.address_of("commitptr")
    committed = device.load_word(commit_address)
    return MicroReceiveResult(
        frames=total_frames,
        committed=committed,
        rx_consumer=device.rx_consumer,
        dma_commands=device.dma_commands_issued,
        total_cycles=max(core.cycle for core in nic.cores),
        total_instructions=sum(s.instructions for s in stats),
        per_core_cycles=[core.cycle for core in nic.cores],
    )


# ======================================================================
# Header-filter service (Section 8 extension): receive + inspect
# ======================================================================
_FILTER_TEMPLATE = """
        .text
main:
        li   $s0, {device_base}
        li   $s1, {total_frames}

claim_loop:
        la   $t0, claim
claim_retry:
        ll   $t1, 0($t0)
        bge  $t1, $s1, drain
        nop
        addiu $t2, $t1, 1
        sc   $t2, 0($t0)
        beqz $t2, claim_retry
        nop

wait_rx:
        lw   $t3, 0x00($s0)        # RX_PROD
        ble  $t3, $t1, wait_rx
        nop

        # -- header inspection (seqlock on the shared select register) --
hdr_retry:
        sw   $t1, 0x2C($s0)        # HDR_SEL = our frame
        lw   $s2, 0x38($s0)        # HDR_VAL
        lw   $t6, 0x2C($s0)        # another core may have re-selected
        bne  $t6, $t1, hdr_retry
        nop
        la   $t7, blocklist
        li   $t8, {blocklist_len}
filter_loop:
        lw   $t5, 0($t7)
        bne  $t5, $s2, filter_next
        nop
        la   $t0, matches          # blocked frame: count it
match_retry:
        ll   $t5, 0($t0)
        addiu $t5, $t5, 1
        sc   $t5, 0($t0)
        beqz $t5, match_retry
        nop
        b    filter_done
        nop
filter_next:
        addiu $t8, $t8, -1
        bgtz $t8, filter_loop
        addiu $t7, $t7, 4          # delay slot: next rule
filter_done:

        sw   $t1, 0x08($s0)        # DMA_CMD: deliver to host
        lw   $t4, 0x08($s0)
wait_dma:
        lw   $t3, 0x0C($s0)        # DMA_PROD
        blt  $t3, $t4, wait_dma
        nop

        la   $t6, bitmap
        setb $t6, $t1
commit:
        la   $t7, commitptr
        lw   $t8, 0($t7)
        addiu $t9, $t8, -1
        la   $t6, bitmap
commit_scan:
        update $t2, $t6, $t9
        subu $t3, $t2, $t9
        bgtz $t3, commit_scan
        move $t9, $t2
        addiu $t9, $t9, 1
        ble  $t9, $t8, claim_loop
        nop
        sw   $t9, 0($t7)
        sw   $t9, 4($s0)           # RX_CONS
        b    claim_loop
        nop

drain:
        la   $t7, commitptr
        lw   $t8, 0($t7)
        bge  $t8, $s1, done
        nop
        b    commit
        nop
done:
        halt

        .data
        .align 2
claim:      .word 0
commitptr:  .word 0
matches:    .word 0
blocklist:  .word {blocklist_words}
bitmap:     .space {bitmap_bytes}
"""


def micro_filter_firmware(total_frames: int, blocklist) -> str:
    """Receive firmware with per-frame header filtering (a Section 8
    'intrusion detection'-style service): each frame's header word is
    read through the device's inspection window and compared against a
    blocklist; matches are counted atomically."""
    if total_frames < 1:
        raise ValueError("need at least one frame")
    rules = list(blocklist)
    if not 1 <= len(rules) <= 8:
        raise ValueError("blocklist must have 1-8 entries")
    bitmap_words = -(-total_frames // 32)
    return _FILTER_TEMPLATE.format(
        device_base=DEVICE_BASE,
        total_frames=total_frames,
        blocklist_len=len(rules),
        blocklist_words=", ".join(str(rule & 0xFFFFFFFF) for rule in rules),
        bitmap_bytes=4 * bitmap_words,
    )


@dataclass
class MicroFilterResult:
    """Outcome of a filtered receive run."""

    frames: int
    committed: int
    matches: int
    expected_matches: int
    total_cycles: int
    total_instructions: int

    @property
    def correct(self) -> bool:
        return self.committed == self.frames and self.matches == self.expected_matches


def run_micro_filter(
    cores: int = 4,
    total_frames: int = 64,
    blocklist=None,
    rx_interarrival_cycles: int = 25,
    dma_latency_cycles: int = 40,
) -> MicroFilterResult:
    """Run the filtering firmware; verifies the match count against the
    Python-side expectation."""
    from repro.nic.controller import MicroNic  # local import: avoids a cycle
    from repro.nic.microdev import header_word

    if blocklist is None:
        # Block every frame whose header the device will actually
        # produce for seq 3 and seq 7 (two deterministic rules).
        blocklist = (header_word(3), header_word(7))
    program = assemble(micro_filter_firmware(total_frames, blocklist))
    device = DeviceMemory(
        total_rx_frames=total_frames,
        rx_interarrival_cycles=rx_interarrival_cycles,
        dma_latency_cycles=dma_latency_cycles,
    )
    nic = MicroNic(NicConfig(cores=cores), program, shared_memory=device)
    stats = nic.run()

    rules = {rule & 0xFFFFFFFF for rule in blocklist}
    expected = sum(1 for seq in range(total_frames) if header_word(seq) in rules)
    return MicroFilterResult(
        frames=total_frames,
        committed=device.load_word(program.address_of("commitptr")),
        matches=device.load_word(program.address_of("matches")),
        expected_matches=expected,
        total_cycles=max(core.cycle for core in nic.cores),
        total_instructions=sum(s.instructions for s in stats),
    )
