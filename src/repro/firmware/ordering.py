"""Total frame ordering over out-of-order frame processing.

Concurrent event processing completes frames out of order, but TCP
performance requires in-order delivery (Section 3.3).  The firmware
therefore keeps, per direction, a *status bitmap* indexed by frame
sequence number modulo the in-flight ring: a handler that finishes a
frame's stage sets that frame's bit, and a commit step advances the
hardware-visible pointer across the longest run of consecutive set bits
starting at the current commit point.

Two implementations of the same contract:

``OrderingMode.SOFTWARE``
    Lock-based: acquire the ordering lock, read-modify-write the flag
    word to set a bit, and loop load/test/clear/store to harvest
    consecutive bits.  The paper calls out these "synchronized, looping
    memory accesses" as a significant overhead.

``OrderingMode.RMW``
    The paper's ``setb`` instruction sets a bit in one atomic slot and
    ``update`` harvests an entire word's run of consecutive bits in one
    atomic slot, with no lock at all.

Both run against a real :class:`~repro.isa.machine.Memory` bitmap using
the *same* ``apply_setb``/``apply_update`` word semantics as the ISA, so
the functional behaviour here and in assembly firmware kernels cannot
diverge.  Each operation returns an :class:`OrderingCost` with the
instruction/load/store counts the operation would execute on a core,
which is what the throughput simulator charges.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.check.monitor import NULL_MONITOR
from repro.isa.machine import Memory, apply_setb, apply_update


class OrderingMode(enum.Enum):
    SOFTWARE = "software-only"
    RMW = "rmw-enhanced"


@dataclass(frozen=True)
class OrderingCost:
    """Core-side cost of one ordering operation."""

    instructions: float
    loads: float
    stores: float

    def __add__(self, other: "OrderingCost") -> "OrderingCost":
        return OrderingCost(
            self.instructions + other.instructions,
            self.loads + other.loads,
            self.stores + other.stores,
        )

ZERO_COST = OrderingCost(0.0, 0.0, 0.0)

# Software path: setting a status bit means computing the word/bit
# index, then a load/or/store read-modify-write — performed inside the
# ordering lock's critical section (the caller charges the lock).
# Each committed (scanned) frame is a load/test/clear/store loop trip,
# and every commit attempt pays a base scan (plus the final failed
# check) even when nothing commits — the "synchronized, looping memory
# accesses" of Section 3.3.
_SW_MARK = OrderingCost(instructions=11.0, loads=4.0, stores=1.0)
_SW_COMMIT_BASE = OrderingCost(instructions=12.0, loads=5.0, stores=0.0)
_SW_COMMIT_PER_FRAME = OrderingCost(instructions=9.0, loads=3.0, stores=1.0)
# Boards that drive a *hardware* pointer (the MAC consumer pointer)
# need a validated consecutive range before the pointer may move: the
# software path scans the flags once to establish the range and a
# second time to clear it (Section 3.3's range-check-then-update).
_SW_COMMIT_PER_FRAME_HW = OrderingCost(instructions=12.0, loads=5.0, stores=1.0)
# RMW path: index computation + one `setb`; commits are one `update`
# per aligned word examined, lock-free.
_RMW_MARK = OrderingCost(instructions=4.0, loads=0.0, stores=1.0)
_RMW_COMMIT_BASE = OrderingCost(instructions=4.0, loads=0.0, stores=0.0)
_RMW_COMMIT_PER_WORD = OrderingCost(instructions=3.0, loads=1.0, stores=0.0)
# Advancing the hardware pointer once something committed (both modes).
_POINTER_UPDATE = OrderingCost(instructions=3.0, loads=0.0, stores=1.0)


class OrderingBoard:
    """One direction's status bitmap + commit pointer."""

    def __init__(
        self,
        ring_size: int,
        mode: OrderingMode,
        hw_pointer: bool = False,
        name: str = "board",
    ) -> None:
        if ring_size < 32 or ring_size % 32:
            raise ValueError(
                f"ring size must be a positive multiple of 32, got {ring_size}"
            )
        self.ring_size = ring_size
        self.mode = mode
        self.hw_pointer = hw_pointer
        self.name = name
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR
        self._bitmap = Memory(ring_size // 8)
        self.commit_seq = 0          # next sequence number to commit
        self.marked = 0
        self.committed = 0
        self.commit_calls = 0
        self.skipped = 0             # holes resequenced past (fault recovery)

    @property
    def requires_lock(self) -> bool:
        """Whether mark/commit must run under the ordering lock."""
        return self.mode is OrderingMode.SOFTWARE

    # ------------------------------------------------------------------
    def mark_done(self, seq: int) -> OrderingCost:
        """Record that ``seq`` finished its stage (still uncommitted)."""
        if seq < self.commit_seq:
            raise ValueError(f"sequence {seq} already committed")
        if seq >= self.commit_seq + self.ring_size:
            raise ValueError(
                f"sequence {seq} would lap the {self.ring_size}-entry ring "
                f"(commit pointer at {self.commit_seq})"
            )
        apply_setb(self._bitmap, 0, seq % self.ring_size)
        self.marked += 1
        if self.monitor.enabled:
            self.monitor.board_marked(self, seq)
        return _SW_MARK if self.mode is OrderingMode.SOFTWARE else _RMW_MARK

    def skip(self, seq: int) -> OrderingCost:
        """Resequence past ``seq`` without a frame ever completing.

        Fault recovery: when the MAC drops a corrupt frame its sequence
        number is already consumed, so the firmware marks the slot done
        anyway — a *hole* — and the normal commit scan advances the
        pointer across it instead of wedging forever at the gap.  Costs
        the same as a mark (it is the same bitmap write); the board
        counts it under :attr:`skipped` rather than :attr:`marked` so
        goodput accounting can tell holes from real frames.
        """
        cost = self.mark_done(seq)
        self.marked -= 1
        self.skipped += 1
        if self.monitor.enabled:
            self.monitor.board_skipped(self, seq)
        return cost

    def is_marked(self, seq: int) -> bool:
        index = seq % self.ring_size
        word = self._bitmap.load_word(4 * (index // 32))
        return bool(word & (1 << (index % 32)))

    # ------------------------------------------------------------------
    def commit(self) -> tuple:
        """Advance the commit pointer across consecutive done frames.

        Returns ``(newly_committed_count, OrderingCost)``.
        """
        self.commit_calls += 1
        old_seq = self.commit_seq
        if self.mode is OrderingMode.RMW:
            result = self._commit_rmw()
        else:
            result = self._commit_software()
        if self.monitor.enabled:
            self.monitor.board_committed(self, old_seq, self.commit_seq, result[0])
        return result

    def _commit_rmw(self) -> tuple:
        cost = _RMW_COMMIT_BASE
        total = 0
        while True:
            index = self.commit_seq % self.ring_size
            last = index - 1  # -1 at a ring boundary starts at bit 0
            new_last = apply_update(self._bitmap, 0, last)
            cost = cost + _RMW_COMMIT_PER_WORD
            progress = new_last - last
            if progress <= 0:
                break
            self.commit_seq += progress
            total += progress
            # `update` stops at an aligned word boundary; loop to let the
            # run continue into the next word (or wrap the ring).
        if total:
            cost = cost + _POINTER_UPDATE
        self.committed += total
        return total, cost

    def _commit_software(self) -> tuple:
        cost = _SW_COMMIT_BASE
        per_frame = _SW_COMMIT_PER_FRAME_HW if self.hw_pointer else _SW_COMMIT_PER_FRAME
        total = 0
        while self.is_marked(self.commit_seq):
            index = self.commit_seq % self.ring_size
            word_addr = 4 * (index // 32)
            word = self._bitmap.load_word(word_addr)
            self._bitmap.store_word(word_addr, word & ~(1 << (index % 32)))
            self.commit_seq += 1
            total += 1
            cost = cost + per_frame
        if total:
            cost = cost + _POINTER_UPDATE
        self.committed += total
        return total, cost

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Marked-but-uncommitted frames (an O(ring) debugging helper).

        Scans the *whole* ring: frames marked behind a gap (done out of
        order, waiting on an earlier frame) count too.  An earlier
        version stopped at the first unmarked slot and so undercounted
        exactly the frames this helper exists to expose.
        """
        return sum(
            1
            for seq in range(self.commit_seq, self.commit_seq + self.ring_size)
            if self.is_marked(seq)
        )
