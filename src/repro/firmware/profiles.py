"""Per-function operation profiles (the model's calibration surface).

The paper's Table 1 reports per-frame instruction and data-access counts
measured from real (proprietary) Tigon-II-derived firmware.  Those
counts are inputs to every throughput result, so this module encodes
them as *ideal* per-frame profiles whose totals match the paper's
Section 2.1 arithmetic exactly:

* send  = 281.8 instructions and 100.0 accesses per frame
  (229 MIPS and 2.6 Gb/s at 812,744 frames/s);
* receive = 253.5 instructions and 84.6 accesses per frame
  (206 MIPS and 2.2 Gb/s).

Everything *else* — parallelization overhead, dispatch, ordering, lock
contention, and the software-vs-RMW differences of Tables 5 and 6 — is
emergent from simulation, not tabulated here.

The fractional counts are per-frame averages: descriptor fetches move
32 (send) / 16 (receive) buffer descriptors per DMA, and each sent frame
uses two descriptors (header + payload regions), exactly as in the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cpu.costmodel import OpProfile

# Batching constants from Section 2.1.
SEND_BDS_PER_FETCH = 32
RECV_BDS_PER_FETCH = 16
BDS_PER_SENT_FRAME = 2      # header region + payload region
BDS_PER_RECV_FRAME = 1
SEND_FRAMES_PER_BD_FETCH = SEND_BDS_PER_FETCH // BDS_PER_SENT_FRAME  # 16
RECV_FRAMES_PER_BD_FETCH = RECV_BDS_PER_FETCH // BDS_PER_RECV_FRAME  # 16


@dataclass(frozen=True)
class FunctionProfile:
    """Ideal per-frame cost of one NIC-processing function."""

    name: str
    per_frame: OpProfile

    @property
    def instructions(self) -> float:
        return self.per_frame.instructions

    @property
    def accesses(self) -> float:
        return self.per_frame.accesses


def _profile(instructions: float, loads: float, stores: float) -> OpProfile:
    return OpProfile(instructions=instructions, loads=loads, stores=stores)


# Table 1 (ideal, per frame).  Loads/stores split roughly 60/40, the mix
# observed in descriptor-processing code (read descriptor fields, write
# assist command words and status).
IDEAL_PROFILES: Dict[str, FunctionProfile] = {
    "fetch_send_bd": FunctionProfile("Fetch Send BD", _profile(56.8, 11.0, 7.0)),
    "send_frame": FunctionProfile("Send Frame", _profile(225.0, 49.0, 33.0)),
    "fetch_recv_bd": FunctionProfile("Fetch Receive BD", _profile(43.5, 9.0, 5.6)),
    "recv_frame": FunctionProfile("Receive Frame", _profile(210.0, 42.0, 28.0)),
}


def ideal_frame_totals() -> Dict[str, float]:
    """Sanity totals used by tests and the Table 1 bench."""
    send_i = (
        IDEAL_PROFILES["fetch_send_bd"].instructions
        + IDEAL_PROFILES["send_frame"].instructions
    )
    send_a = (
        IDEAL_PROFILES["fetch_send_bd"].accesses
        + IDEAL_PROFILES["send_frame"].accesses
    )
    recv_i = (
        IDEAL_PROFILES["fetch_recv_bd"].instructions
        + IDEAL_PROFILES["recv_frame"].instructions
    )
    recv_a = (
        IDEAL_PROFILES["fetch_recv_bd"].accesses
        + IDEAL_PROFILES["recv_frame"].accesses
    )
    return {
        "send_instructions": send_i,
        "send_accesses": send_a,
        "recv_instructions": recv_i,
        "recv_accesses": recv_a,
    }


@dataclass(frozen=True)
class FirmwareProfiles:
    """Parallelization-overhead constants of the frame-parallel firmware.

    These model the *re-entrant* task functions of Section 3.3: the
    dispatch loop that inspects hardware pointers and builds event
    structures, the per-event queue manipulation, and the lock
    acquire/release sequences.  Ordering costs come from
    :mod:`repro.firmware.ordering` (they differ by mode); everything
    here is mode-independent.
    """

    # Dispatch loop: scan hardware progress pointers / queue head, once
    # per handler invocation.
    dispatch_per_event: OpProfile = field(
        default_factory=lambda: _profile(26.0, 5.0, 3.0)
    )
    # Building one frame's entry in an event structure.
    dispatch_per_frame: OpProfile = field(
        default_factory=lambda: _profile(7.0, 1.0, 2.0)
    )
    # Re-entrancy overhead added to each task function, per frame
    # (synchronized access to shared ring indices and buffer accounting).
    reentrancy_per_frame: OpProfile = field(
        default_factory=lambda: _profile(9.0, 2.0, 1.5)
    )
    # Per-frame completion bookkeeping that no RMW instruction can
    # replace: recycling the send frame's two BDs and ring slots (send),
    # and producing the return descriptor with actual length/status
    # plus buffer accounting (receive).  Charged to the dispatch and
    # ordering functions in both firmware variants.
    send_completion_per_frame: OpProfile = field(
        default_factory=lambda: _profile(9.0, 2.0, 2.0)
    )
    recv_completion_per_frame: OpProfile = field(
        default_factory=lambda: _profile(27.0, 7.0, 4.0)
    )
    # One uncontended lock acquire + release (ll/sc loop + barrier +
    # release store).
    lock_acquire_release: OpProfile = field(
        default_factory=lambda: _profile(14.0, 3.0, 2.0)
    )
    # One trip of the lock spin loop (ll / test / branch), charged per
    # spin cycle bundle while waiting for a contended lock.
    spin_loop: OpProfile = field(default_factory=lambda: _profile(4.0, 1.0, 0.0))
    spin_loop_cycles: float = 6.0  # cycles one spin trip occupies

    def spin_cost(self, wait_cycles: float) -> OpProfile:
        """Busy-wait cost for ``wait_cycles`` of lock contention."""
        if wait_cycles <= 0:
            return _profile(0.0, 0.0, 0.0)
        trips = wait_cycles / self.spin_loop_cycles
        return self.spin_loop.scaled(trips)


DEFAULT_FIRMWARE_PROFILES = FirmwareProfiles()
