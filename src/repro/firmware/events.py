"""Event mechanisms: the Tigon-II event register and the paper's
distributed event queue.

Task-level parallel firmware (Section 3.2) dispatches off a hardware
*event register*: a bit vector with one bit per event type.  While any
processor is handling a type, no other processor may handle that same
type — the register only says "DMAs are ready", not *which* DMAs — so
parallelism is capped at the number of event types with pending work.

Frame-level parallel firmware (Section 3.3) instead inspects
hardware-maintained progress pointers, carves the new work into *event
structures* (bundles of frames needing one kind of processing), and
pushes them on a software event queue that any idle core may pop.  Two
instances of the same handler can then run concurrently on different
bundles, which is what lets many slow cores fill a 10 Gb/s pipe.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional

from repro.check.monitor import NULL_MONITOR


class EventKind(enum.Enum):
    """Processing steps from Figures 1 and 2, as event types."""

    FETCH_SEND_BD = "fetch_send_bd"
    SEND_FRAME = "send_frame"
    SEND_COMPLETE = "send_complete"
    FETCH_RECV_BD = "fetch_recv_bd"
    RECV_FRAME = "recv_frame"
    RECV_COMPLETE = "recv_complete"
    SW_RETRY = "sw_retry"


@dataclass
class FrameEvent:
    """One bundle of work units (the paper's 'event data structure').

    ``first_seq``/``count`` identify the contiguous frame range this
    event covers; handlers for pointer-driven hardware (DMA, MAC) build
    these ranges straight from the progress pointers.
    """

    kind: EventKind
    first_seq: int = 0
    count: int = 0
    payload: Optional[object] = None
    retries: int = 0

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"event frame count must be non-negative, got {self.count}")


class DistributedEventQueue:
    """Software event queue shared by all cores (frame-level model).

    The queue is the firmware's own data structure living in scratchpad
    memory; hardware never touches it.  Besides FIFO pops it supports
    *retry* requeueing: a handler that runs out of a NIC resource
    (SDRAM buffer space, host buffers) re-enqueues its event to be
    retried later (Section 3.3).
    """

    def __init__(self, max_depth: int = 512) -> None:
        if max_depth < 1:
            raise ValueError("queue depth must be positive")
        self.max_depth = max_depth
        self._queue: Deque[FrameEvent] = deque()
        self.enqueues = 0
        self.dequeues = 0
        self.retries = 0
        self.high_water = 0
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        """Whether a :meth:`push` right now would overflow the queue."""
        return len(self._queue) >= self.max_depth

    def all_claimed(self, claims: Mapping[EventKind, bool]) -> bool:
        """Whether every queued event's kind is currently claimed.

        Task-level dispatch uses this to decide that a core has nothing
        runnable: popping would only cycle claimed events through
        ``push_retry``, reordering them and spinning the scheduler
        without progress.  Returns ``True`` for an empty queue.
        """
        return all(claims[event.kind] for event in self._queue)

    def push(self, event: FrameEvent) -> None:
        if len(self._queue) >= self.max_depth:
            raise OverflowError(
                f"event queue overflow at depth {self.max_depth}; "
                "the firmware sizes the queue for worst-case in-flight frames"
            )
        self._queue.append(event)
        self.enqueues += 1
        self.high_water = max(self.high_water, len(self._queue))
        if self.monitor.enabled:
            self.monitor.queue_pushed(self)

    def push_retry(self, event: FrameEvent) -> None:
        event.retries += 1
        self.retries += 1
        self.push(event)

    def pop(self) -> Optional[FrameEvent]:
        if not self._queue:
            return None
        self.dequeues += 1
        event = self._queue.popleft()
        if self.monitor.enabled:
            self.monitor.queue_popped(self)
        return event


class EventRegister:
    """Hardware event register (task-level baseline, Section 3.2).

    One bit per :class:`EventKind`.  A core *claims* a set bit to run
    its handler; while claimed, no other core may process that type.
    The hardware keeps the bit set as long as work of that type remains.
    """

    def __init__(self) -> None:
        self._pending: Dict[EventKind, bool] = {kind: False for kind in EventKind}
        self._claimed_by: Dict[EventKind, Optional[int]] = {
            kind: None for kind in EventKind
        }
        self.set_operations = 0
        self.blocked_claims = 0
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    def raise_event(self, kind: EventKind) -> None:
        """Hardware (or firmware) signals that work of ``kind`` exists."""
        self._pending[kind] = True
        self.set_operations += 1

    def clear_event(self, kind: EventKind) -> None:
        """Handler signals that no work of ``kind`` remains."""
        self._pending[kind] = False

    def pending(self, kind: EventKind) -> bool:
        return self._pending[kind]

    def claim(self, kind: EventKind, core_id: int) -> bool:
        """Try to start handling ``kind`` on ``core_id``.

        Fails when the bit is clear or another core already runs this
        handler — the serialization the paper identifies as the
        task-level model's scalability limit.
        """
        if not self._pending[kind]:
            return False
        holder = self._claimed_by[kind]
        if holder is not None and holder != core_id:
            self.blocked_claims += 1
            return False
        self._claimed_by[kind] = core_id
        if self.monitor.enabled:
            self.monitor.register_claimed(self, kind, core_id)
        return True

    def release(self, kind: EventKind, core_id: int) -> None:
        if self._claimed_by[kind] != core_id:
            raise RuntimeError(
                f"core {core_id} releasing {kind} held by {self._claimed_by[kind]}"
            )
        if self.monitor.enabled:
            self.monitor.register_released(self, kind, core_id)
        self._claimed_by[kind] = None

    def claimable_kinds(self, core_id: int) -> List[EventKind]:
        """Event types this core could start handling right now."""
        kinds = []
        for kind in EventKind:
            if self._pending[kind]:
                holder = self._claimed_by[kind]
                if holder is None or holder == core_id:
                    kinds.append(kind)
        return kinds
