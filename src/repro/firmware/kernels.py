"""Representative firmware kernels in real MIPS assembly.

The ILP limit study (Table 2) needs "a dynamic instruction trace of
idealized NIC firmware".  The original trace came from proprietary
Alteon firmware; these kernels recreate its characteristic inner loops —
descriptor parsing, header checksumming, event dispatch pointer
arithmetic, and the frame-ordering code in both its lock-based and
RMW-enhanced forms — in assemblable, runnable form.

The two ordering kernels double as the ISA-level ablation for the
paper's ``setb``/``update`` instructions: both perform the *same*
logical work (mark N frames done, then harvest the consecutive run),
and the instruction-count ratio between them is measured by tests and
the Table 5 bench.

All branch delay slots are written explicitly (R4000 style).
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.assembler import Program, assemble
from repro.isa.machine import Machine
from repro.isa.trace import TraceEntry

# ----------------------------------------------------------------------
# Shared data segment: descriptor ring, header buffer, status bitmap.
# ----------------------------------------------------------------------
_DATA_SEGMENT = """
        .data
        .align 2
lock:       .word 0
commitptr:  .word 0
bitmap:     .word 0, 0, 0, 0, 0, 0, 0, 0
hwptr:      .word 0
swptr:      .word 0
ring:       .space 512            # 32 descriptors x 16 B
hdr:        .space 64             # one 42 B header, padded
outq:       .space 512
evq:        .space 256
"""

# Parse 32 buffer descriptors: load address/length/flags, bounds-check,
# and enqueue (address, length) into the assist's command ring.
BD_FETCH_KERNEL = """
bd_fetch:
        la   $t0, ring
        la   $t1, outq
        li   $t2, 32              # descriptor count
bd_loop:
        lw   $t3, 0($t0)          # buffer address
        lw   $t4, 4($t0)          # length
        lw   $t5, 8($t0)          # flags
        addu $t6, $t3, $t4        # end address
        andi $t7, $t5, 0x4        # end-of-frame flag
        sw   $t3, 0($t1)
        sw   $t4, 4($t1)
        beqz $t7, bd_skip
        addiu $t0, $t0, 16        # delay slot: next descriptor
        sw   $t6, 8($t1)
bd_skip:
        addiu $t2, $t2, -1
        bgtz $t2, bd_loop
        addiu $t1, $t1, 16        # delay slot: next output slot
        jr   $ra
        nop
"""

# Sum the 42-byte protocol header as 16-bit words with end-around carry
# (the IP-checksum inner loop the firmware runs per sent frame).
CHECKSUM_KERNEL = """
checksum:
        la   $t0, hdr
        li   $t1, 21              # 21 halfwords = 42 bytes
        li   $v0, 0
ck_loop:
        lhu  $t2, 0($t0)
        addu $v0, $v0, $t2
        addiu $t1, $t1, -1
        bgtz $t1, ck_loop
        addiu $t0, $t0, 2         # delay slot
        srl  $t3, $v0, 16         # fold the carries
        andi $v0, $v0, 0xffff
        addu $v0, $v0, $t3
        srl  $t3, $v0, 16
        andi $v0, $v0, 0xffff
        addu $v0, $v0, $t3
        nor  $v0, $v0, $zero      # one's complement
        andi $v0, $v0, 0xffff
        jr   $ra
        nop
"""

# Dispatch loop body: compare the hardware progress pointer against the
# software pointer, and build an event structure for the delta.
DISPATCH_KERNEL = """
dispatch:
        la   $t0, hwptr
        lw   $t1, 0($t0)          # hardware progress
        lw   $t2, 4($t0)          # software progress (swptr)
        subu $t3, $t1, $t2
        blez $t3, disp_done
        nop
        la   $t4, evq
        sw   $t2, 0($t4)          # event: first sequence
        sw   $t3, 4($t4)          # event: count
        li   $t5, 2
        sw   $t5, 8($t4)          # event: kind
        sw   $t1, 4($t0)          # swptr = hwptr
disp_done:
        jr   $ra
        nop
"""

# Ordering, software-only: for each of $a0 frames starting at $a1 —
# acquire the spinlock with ll/sc, set the frame's status bit with a
# load/or/store, release; finally scan for consecutive set bits from
# the commit pointer, clearing as it goes (still under the lock).
ORDER_SOFTWARE_KERNEL = """
order_sw:
        move $t9, $a0             # frame count
        move $t8, $a1             # first sequence
osw_mark:
        la   $t0, lock
osw_spin:
        ll   $t1, 0($t0)
        bnez $t1, osw_spin
        nop
        li   $t1, 1
        sc   $t1, 0($t0)
        beqz $t1, osw_spin
        nop
        # -- critical section: set bit $t8 ------------------------------
        la   $t2, bitmap
        srl  $t3, $t8, 5          # word index
        sll  $t3, $t3, 2
        addu $t2, $t2, $t3
        andi $t4, $t8, 31         # bit within word
        li   $t5, 1
        sllv $t5, $t4, $t5
        lw   $t6, 0($t2)
        or   $t6, $t6, $t5
        sw   $t6, 0($t2)
        sw   $zero, 0($t0)        # release lock
        addiu $t9, $t9, -1
        bgtz $t9, osw_mark
        addiu $t8, $t8, 1         # delay slot: next sequence
        # -- commit scan, under the lock ---------------------------------
        la   $t0, lock
osw_spin2:
        ll   $t1, 0($t0)
        bnez $t1, osw_spin2
        nop
        li   $t1, 1
        sc   $t1, 0($t0)
        beqz $t1, osw_spin2
        nop
        la   $t2, commitptr
        lw   $t3, 0($t2)          # commit sequence
osw_scan:
        la   $t4, bitmap
        srl  $t5, $t3, 5
        sll  $t5, $t5, 2
        addu $t4, $t4, $t5
        andi $t6, $t3, 31
        li   $t7, 1
        sllv $t7, $t6, $t7
        lw   $t5, 0($t4)
        and  $t6, $t5, $t7
        beqz $t6, osw_scan_done
        nop
        nor  $t7, $t7, $zero      # clear the bit
        and  $t5, $t5, $t7
        sw   $t5, 0($t4)
        b    osw_scan
        addiu $t3, $t3, 1         # delay slot: next sequence
osw_scan_done:
        sw   $t3, 0($t2)          # publish commit pointer
        sw   $zero, 0($t0)        # release lock
        jr   $ra
        nop
"""

# Ordering, RMW-enhanced: one `setb` per frame (no lock), then `update`
# calls to harvest the consecutive run, one aligned word at a time.
ORDER_RMW_KERNEL = """
order_rmw:
        move $t9, $a0             # frame count
        move $t8, $a1             # first sequence
        la   $t0, bitmap
orm_mark:
        setb $t0, $t8
        addiu $t9, $t9, -1
        bgtz $t9, orm_mark
        addiu $t8, $t8, 1         # delay slot: next sequence
        la   $t2, commitptr
        lw   $t3, 0($t2)
        addiu $t3, $t3, -1        # update takes 'last committed' offset
orm_harvest:
        update $t4, $t0, $t3
        subu $t5, $t4, $t3
        bgtz $t5, orm_harvest
        move $t3, $t4             # delay slot: advance last pointer
        addiu $t3, $t3, 1
        sw   $t3, 0($t2)          # publish commit pointer
        jr   $ra
        nop
"""

# Top-level idealized firmware: one "frame's worth" of processing per
# outer iteration, mixing the kernels the way the real event loop does.
_MAIN_TEMPLATE = """
        .text
main:
        li   $s0, {iterations}
main_loop:
        jal  bd_fetch
        nop
        jal  checksum
        nop
        jal  dispatch
        nop
        li   $a0, 16              # mark/commit a 16-frame bundle
        jal  {order_kernel}
        li   $a1, 0               # delay slot: first sequence
        la   $t0, commitptr       # reset ordering state between rounds
        sw   $zero, 0($t0)
        la   $t0, bitmap
        sw   $zero, 0($t0)
        sw   $zero, 4($t0)
        addiu $s0, $s0, -1
        bgtz $s0, main_loop
        nop
        halt
"""


def kernel_source(order_kernel: str = "order_sw", iterations: int = 4) -> str:
    """Full assemblable source for the idealized-firmware program."""
    if order_kernel not in ("order_sw", "order_rmw"):
        raise ValueError(f"unknown ordering kernel {order_kernel!r}")
    return (
        _MAIN_TEMPLATE.format(order_kernel=order_kernel, iterations=iterations)
        + BD_FETCH_KERNEL
        + CHECKSUM_KERNEL
        + DISPATCH_KERNEL
        + ORDER_SOFTWARE_KERNEL
        + ORDER_RMW_KERNEL
        + _DATA_SEGMENT
    )


def assemble_firmware(order_kernel: str = "order_sw", iterations: int = 4) -> Program:
    return assemble(kernel_source(order_kernel, iterations))


def capture_trace(order_kernel: str = "order_sw", iterations: int = 4) -> List[TraceEntry]:
    """Run the idealized firmware and return its dynamic trace."""
    program = assemble_firmware(order_kernel, iterations)
    trace: List[TraceEntry] = []
    machine = Machine(program, trace=trace)
    machine.run()
    return trace


def ordering_instruction_counts(frames: int = 16) -> Dict[str, int]:
    """Dynamic instruction counts of just the ordering kernels.

    Runs each ordering kernel once over ``frames`` frames and counts the
    instructions executed inside it (excluding the surrounding loop),
    giving the ISA-level measurement behind the paper's claim that the
    RMW instructions cut ordering overhead roughly in half.
    """
    counts: Dict[str, int] = {}
    for kernel in ("order_sw", "order_rmw"):
        source = f"""
        .text
main:
        li   $a0, {frames}
        jal  {kernel}
        li   $a1, 0
        halt
""" + ORDER_SOFTWARE_KERNEL + ORDER_RMW_KERNEL + _DATA_SEGMENT
        program = assemble(source)
        machine = Machine(program)
        machine.run()
        # Subtract the 4 harness instructions (li, jal, delay slot, halt).
        counts[kernel] = machine.instructions_executed - 4
    return counts
