"""NIC firmware models.

The paper's firmware contribution is a *frame-level parallel*
organization: work is divided into bundles of frames needing a given
processing step (an *event*), any core may run any event, and total
frame ordering is restored by committing frames in arrival order
through per-frame status bitmaps.  Two variants of the ordering code
exist:

* *software-only* — lock-based: acquire, scan status flags for
  consecutive done bits, clear them, advance pointers, release;
* *RMW-enhanced* — the paper's ``setb``/``update`` atomic instructions
  replace the lock + loop.

The task-level parallel baseline (Tigon-II event register) is also
modeled, to reproduce the motivation that a single event type cannot be
processed by more than one core at a time.
"""

from repro.firmware.events import (
    EventKind,
    EventRegister,
    FrameEvent,
    DistributedEventQueue,
)
from repro.firmware.ordering import OrderingBoard, OrderingCost, OrderingMode
from repro.firmware.profiles import (
    FirmwareProfiles,
    FunctionProfile,
    IDEAL_PROFILES,
    ideal_frame_totals,
)

__all__ = [
    "DistributedEventQueue",
    "EventKind",
    "EventRegister",
    "FirmwareProfiles",
    "FrameEvent",
    "FunctionProfile",
    "IDEAL_PROFILES",
    "OrderingBoard",
    "OrderingCost",
    "OrderingMode",
    "ideal_frame_totals",
]
