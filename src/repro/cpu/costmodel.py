"""Statistical core-timing model for the event-driven throughput tier.

The cycle-level :class:`~repro.cpu.core.PipelinedCore` charges stalls per
instruction.  Simulating every instruction of every frame at 10 Gb/s is
intractable in Python, so the throughput simulator instead times whole
handler invocations using this model — the *same* charging rules applied
to an operation profile (instruction count, loads, stores, branch mix)
instead of to individual instructions.

The stall categories are exactly Table 3's rows, so the throughput
simulator's IPC breakdown is directly comparable to the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class OpProfile:
    """Operation mix of one handler invocation (may cover many frames)."""

    instructions: float
    loads: float
    stores: float
    taken_branch_fraction: float = 0.06   # taken branches per instruction
    load_use_fraction: float = 0.50       # paper: "50% of all loads ...
    #                                        cause load-to-use dependences"

    def __post_init__(self) -> None:
        if self.instructions < 0 or self.loads < 0 or self.stores < 0:
            raise ValueError("operation counts must be non-negative")
        if self.loads + self.stores > self.instructions and self.instructions > 0:
            raise ValueError(
                f"memory operations ({self.loads + self.stores}) exceed "
                f"instruction count ({self.instructions})"
            )

    @property
    def accesses(self) -> float:
        return self.loads + self.stores

    def scaled(self, factor: float) -> "OpProfile":
        """Uniformly scale the counts (e.g., per-frame -> per-batch)."""
        return replace(
            self,
            instructions=self.instructions * factor,
            loads=self.loads * factor,
            stores=self.stores * factor,
        )

    def plus(self, other: "OpProfile") -> "OpProfile":
        total = self.instructions + other.instructions
        if total == 0:
            return self
        blend = lambda a, b: (a * self.instructions + b * other.instructions) / total
        return OpProfile(
            instructions=total,
            loads=self.loads + other.loads,
            stores=self.stores + other.stores,
            taken_branch_fraction=blend(
                self.taken_branch_fraction, other.taken_branch_fraction
            ),
            load_use_fraction=blend(self.load_use_fraction, other.load_use_fraction),
        )


@dataclass
class HandlerCost:
    """Cycle cost of one handler invocation, by Table 3 category."""

    instructions: float
    execution_cycles: float
    imiss_cycles: float
    load_cycles: float
    conflict_cycles: float
    pipeline_cycles: float

    @property
    def total_cycles(self) -> float:
        return (
            self.execution_cycles
            + self.imiss_cycles
            + self.load_cycles
            + self.conflict_cycles
            + self.pipeline_cycles
        )

    def breakdown(self) -> Dict[str, float]:
        total = self.total_cycles
        if total == 0:
            return {}
        return {
            "execution": self.execution_cycles / total,
            "imiss": self.imiss_cycles / total,
            "load": self.load_cycles / total,
            "conflict": self.conflict_cycles / total,
            "pipeline": self.pipeline_cycles / total,
        }


class ContentionModel:
    """Expected bank-conflict wait per scratchpad access.

    The scratchpad is ``banks`` independent single-ported banks; the
    firmware's metadata accesses are spread across them by word
    interleaving, so each bank behaves as a slotted single server with
    utilization rho = accesses_per_cycle / banks.  The expected queueing
    wait of a random access is the discrete M/D/1 waiting time
    rho / (2 * (1 - rho)) slots, which matches the cycle-level model's
    measured conflicts within a few percent at the paper's operating
    point (~1.5 accesses/cycle over 4 banks).
    """

    def __init__(self, banks: int) -> None:
        if banks < 1:
            raise ValueError("need at least one bank")
        self.banks = banks

    def expected_wait(self, accesses_per_cycle: float) -> float:
        if accesses_per_cycle < 0:
            raise ValueError("access rate must be non-negative")
        rho = accesses_per_cycle / self.banks
        if rho >= 1.0:
            # Saturated banks: the wait grows without bound; cap it so
            # the fixed-point iteration in the throughput simulator can
            # back pressure instead of diverging.
            return 25.0
        return rho / (2.0 * (1.0 - rho))


@dataclass
class CoreCostModel:
    """Applies the pipeline charging rules to an :class:`OpProfile`.

    Parameters mirror the cycle-level core:

    * every load stalls 1 cycle (2-cycle scratchpad vs 1-cycle MEM);
    * conflict wait applies to every load, and to the fraction of
      stores that find the 1-deep store buffer still draining
      (``store_buffer_pressure``);
    * 50% of loads are load-use (one extra pipeline stall each);
    * each taken branch annuls one fetch slot;
    * I-cache misses are rare (small firmware footprint) and charged as
      ``imiss_rate`` x ``imiss_penalty`` per instruction.
    """

    imiss_rate: float = 0.00125          # misses per instruction
    imiss_penalty_cycles: float = 8.0    # 128-bit port fill round trip
    store_buffer_pressure: float = 0.5   # fraction of stores exposed to wait
    # Cycles a load stalls beyond its issue slot.  1.0 models the
    # paper's shared banked scratchpad (2-cycle crossbar+bank access vs
    # a 1-cycle MEM stage).  Section 4's design alternative — private
    # per-core scratchpads — would make local loads stall-free but
    # charge "much higher latency to access a remote location"; model
    # it as remote_fraction x (remote_latency - 1).
    load_stall_cycles: float = 1.0

    def cost(self, profile: OpProfile, conflict_wait_per_access: float) -> HandlerCost:
        if conflict_wait_per_access < 0:
            raise ValueError("conflict wait must be non-negative")
        execution = profile.instructions
        imiss = profile.instructions * self.imiss_rate * self.imiss_penalty_cycles
        load = profile.loads * self.load_stall_cycles
        conflict = (
            profile.loads * conflict_wait_per_access
            + profile.stores * conflict_wait_per_access * self.store_buffer_pressure
        )
        pipeline = (
            profile.loads * profile.load_use_fraction
            + profile.instructions * profile.taken_branch_fraction
        )
        return HandlerCost(
            instructions=profile.instructions,
            execution_cycles=execution,
            imiss_cycles=imiss,
            load_cycles=load,
            conflict_cycles=conflict,
            pipeline_cycles=pipeline,
        )

    def cycles(self, profile: OpProfile, conflict_wait_per_access: float) -> float:
        return self.cost(profile, conflict_wait_per_access).total_cycles
