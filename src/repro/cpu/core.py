"""Cycle-level model of the paper's processor core.

Section 4: "Each processing core is a single-issue, 5-stage pipelined
processor that implements a subset of the MIPS R4000 instruction set.
To allow stores to proceed without stalling the processor, a single
store may be buffered in the MEM stage; loads requiring more than one
cycle force the processor to stall."

Charging rules (each matches a stall category in Table 3):

* every instruction occupies one issue cycle (``execution``);
* an I-cache miss stalls fetch until the line fill returns
  (``imiss_stall``);
* every scratchpad load stalls one cycle, because the crossbar + bank
  round trip is 2 cycles against a 1-cycle MEM stage (``load_stall``);
* waiting for a busy bank adds conflict cycles (``conflict_stall``);
* a load whose value is consumed by the next instruction stalls one
  more cycle (load-use), a taken branch annuls one fetch slot past the
  delay slot, and a branch whose condition comes from the immediately
  preceding instruction waits a cycle (all ``pipeline_stall``);
* a store enters the 1-deep store buffer and drains in the background;
  the core only stalls if the buffer is still occupied when the next
  memory instruction needs it.

``setb`` executes like a store (the bank does the read-modify-write in
its slot) and ``update`` like a load (the core needs the returned
pointer), which is precisely why the paper's RMW instructions are cheap:
one issue slot each instead of a lock + scan loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.isa.assembler import Program
from repro.isa.instructions import Instruction
from repro.isa.machine import Machine, Memory
from repro.mem.icache import InstructionCache
from repro.mem.imem import InstructionMemory
from repro.mem.scratchpad import Scratchpad


@dataclass
class CoreStats:
    """Per-core cycle accounting (the rows of Table 3)."""

    instructions: int = 0
    cycles: int = 0
    imiss_stalls: int = 0
    load_stalls: int = 0
    conflict_stalls: int = 0
    pipeline_stalls: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def breakdown(self) -> dict:
        """Fractions of total cycles per category (sums to 1.0)."""
        if self.cycles == 0:
            return {}
        return {
            "execution": self.instructions / self.cycles,
            "imiss": self.imiss_stalls / self.cycles,
            "load": self.load_stalls / self.cycles,
            "conflict": self.conflict_stalls / self.cycles,
            "pipeline": self.pipeline_stalls / self.cycles,
        }


class PipelinedCore:
    """One cycle-counted core executing an assembled program."""

    def __init__(
        self,
        program: Program,
        scratchpad: Scratchpad,
        imem: Optional[InstructionMemory] = None,
        icache: Optional[InstructionCache] = None,
        core_id: int = 0,
        entry: Optional[str] = None,
        shared_memory: Optional[Memory] = None,
    ) -> None:
        memory = shared_memory if shared_memory is not None else scratchpad.memory
        self.machine = Machine(
            program,
            memory,
            core_id=core_id,
            entry=entry,
            load_data=shared_memory is None or core_id == 0,
        )
        self.scratchpad = scratchpad
        self.imem = imem if imem is not None else InstructionMemory()
        self.icache = icache if icache is not None else InstructionCache()
        self.core_id = core_id
        self.cycle = 0
        self.stats = CoreStats()
        self._store_buffer_free_at = 0
        self._last_destination: Optional[int] = None
        self._last_was_load = False
        self._pending_taken_penalty = False

    @property
    def halted(self) -> bool:
        return self.machine.halted

    # ------------------------------------------------------------------
    def run_instruction(self) -> Optional[Instruction]:
        """Execute one instruction and advance the cycle counter."""
        if self.machine.halted:
            return None
        pc = self.machine.pc
        self._fetch(pc)
        if self._pending_taken_penalty:
            # One fetch slot was annulled by the taken branch/jump.
            self._stall(1, "pipeline")
            self._pending_taken_penalty = False

        instruction = self.machine.program.instruction_at(pc)
        spec = instruction.spec

        # Hazard: consuming the value of the immediately preceding
        # instruction too early (load-use, or branch-on-fresh-condition).
        sources = instruction.source_registers()
        depends_on_previous = (
            self._last_destination is not None
            and self._last_destination != 0
            and self._last_destination in sources
        )
        if depends_on_previous and (self._last_was_load or spec.is_branch):
            self._stall(1, "pipeline")

        # Lazily-evaluated device models (micro-tier assists) read the
        # executing core's cycle to answer progress-pointer loads.
        memory = self.machine.memory
        if hasattr(memory, "cycle"):
            memory.cycle = self.cycle

        taken_before = self.machine.taken_branches
        executed = self.machine.step()
        assert executed is instruction
        self.stats.instructions += 1
        self.cycle += 1  # the issue slot itself
        self.stats.cycles += 1

        if spec.is_load or instruction.mnemonic == "update":
            self._time_load(instruction)
        elif spec.is_store or instruction.mnemonic == "setb":
            self._time_store(instruction)

        taken = spec.is_jump or self.machine.taken_branches > taken_before
        if taken:
            self._pending_taken_penalty = True

        self._last_destination = instruction.destination_register()
        self._last_was_load = spec.is_load
        return instruction

    def run(self, max_instructions: int = 10_000_000) -> CoreStats:
        executed = 0
        while not self.machine.halted:
            if executed >= max_instructions:
                raise RuntimeError(f"exceeded {max_instructions} instructions")
            self.run_instruction()
            executed += 1
        return self.stats

    # ------------------------------------------------------------------
    def _fetch(self, pc: int) -> None:
        if self.icache.lookup(pc):
            return
        done = self.imem.fill(self.icache.line_bytes, self.cycle)
        stall = max(0, done - self.cycle)
        self._stall(stall, "imiss")

    def _time_load(self, instruction: Instruction) -> None:
        address = self._effective_address(instruction)
        access = self.scratchpad.access(address, self.core_id, self.cycle)
        # Minimum 2-cycle access against the 1-cycle MEM stage: one
        # guaranteed stall, plus any bank-conflict waiting.
        self._stall(access.conflict_wait, "conflict")
        self._stall(1, "load")

    def _time_store(self, instruction: Instruction) -> None:
        if self._store_buffer_free_at > self.cycle:
            # Second outstanding store: wait for the buffer to drain.
            wait = self._store_buffer_free_at - self.cycle
            self._stall(wait, "conflict")
        address = self._effective_address(instruction)
        access = self.scratchpad.access(address, self.core_id, self.cycle)
        self._store_buffer_free_at = access.data_cycle

    def _effective_address(self, instruction: Instruction) -> int:
        # The machine already executed the instruction, so registers hold
        # post-execution values; for address computation only rs + imm is
        # needed and rs is never the destination of loads in this ISA
        # subset except degenerate self-overwrites, which firmware
        # kernels avoid.  Map the functional address into the scratchpad
        # window, wrapping so synthetic kernels cannot run out of range.
        if instruction.mnemonic == "setb":
            base = self.machine.read_register(instruction.rs)
            index = self.machine.read_register(instruction.rt)
            address = base + 4 * (index // 32)
        elif instruction.mnemonic == "update":
            base = self.machine.read_register(instruction.rs)
            address = base
        else:
            address = (
                self.machine.read_register(instruction.rs) + instruction.imm
            ) & 0xFFFFFFFF
        span = self.scratchpad.capacity_bytes
        return self.scratchpad.base_address + (address % span) // 4 * 4

    def _stall(self, cycles: int, category: str) -> None:
        if cycles <= 0:
            return
        self.cycle += cycles
        self.stats.cycles += cycles
        if category == "imiss":
            self.stats.imiss_stalls += cycles
        elif category == "load":
            self.stats.load_stalls += cycles
        elif category == "conflict":
            self.stats.conflict_stalls += cycles
        elif category == "pipeline":
            self.stats.pipeline_stalls += cycles
        else:  # pragma: no cover - internal categories are fixed
            raise ValueError(f"unknown stall category {category!r}")


class LockstepSystem:
    """Several cores sharing one scratchpad, advanced near-lockstep.

    The scheduler always steps the core with the smallest local cycle
    count, so cross-core crossbar arbitration happens in global cycle
    order — the deterministic equivalent of lockstep simulation at
    instruction granularity.
    """

    def __init__(self, cores: List[PipelinedCore]) -> None:
        if not cores:
            raise ValueError("need at least one core")
        self.cores = cores

    @property
    def all_halted(self) -> bool:
        return all(core.halted for core in self.cores)

    def run(self, max_steps: int = 20_000_000) -> List[CoreStats]:
        steps = 0
        while not self.all_halted:
            if steps >= max_steps:
                raise RuntimeError(f"exceeded {max_steps} steps")
            running = [c for c in self.cores if not c.halted]
            core = min(running, key=lambda c: (c.cycle, c.core_id))
            core.run_instruction()
            steps += 1
        return [core.stats for core in self.cores]
