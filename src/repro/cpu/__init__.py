"""Processor-core models.

Two levels:

* :class:`~repro.cpu.core.PipelinedCore` — a cycle-level model of the
  paper's single-issue, 5-stage, in-order MIPS core (1-deep store
  buffer, static not-taken branches with one delay slot, per-core
  I-cache, 2-cycle banked-scratchpad loads).  Executes real assembled
  programs; used for kernel validation and stall-rule verification.
* :class:`~repro.cpu.costmodel.CoreCostModel` — the same charging rules
  applied statistically to firmware-handler operation profiles; used by
  the event-driven throughput simulator, where running every instruction
  of every frame would be intractable.
"""

from repro.cpu.core import CoreStats, LockstepSystem, PipelinedCore
from repro.cpu.costmodel import ContentionModel, CoreCostModel, HandlerCost

__all__ = [
    "ContentionModel",
    "CoreCostModel",
    "CoreStats",
    "HandlerCost",
    "LockstepSystem",
    "PipelinedCore",
]
