"""Conformance and invariant-checking subsystem.

Three legs (see ``docs/validation.md``):

* **Runtime monitors** — :class:`InvariantMonitor` hooks threaded
  through the kernel, ordering boards, event queue, memories and the
  fabric wire (null-object by default, byte-identical when disabled).
* **Differential oracles** — paired runs diffed field-by-field
  (:mod:`repro.check.oracles`): software-vs-RMW ordering equivalence,
  fabric-loopback-vs-bare simulator, faulted-vs-clean accounting.
* **Seeded fuzzing with replay** — :mod:`repro.check.fuzz` samples
  random experiment points, runs them with monitors armed, shrinks
  failures and writes deterministic replay files
  (``repro check --fuzz N`` / ``--replay FILE``).

Only the monitor layer is imported eagerly (it is dependency-free and
imported *by* the kernel); the heavier oracle/fuzz machinery loads
lazily via PEP 562 so ``import repro.sim.kernel`` stays cheap and
cycle-free.
"""

from repro.check.monitor import (  # noqa: F401
    NULL_MONITOR,
    InvariantMonitor,
    InvariantViolation,
    NullInvariantMonitor,
)

_LAZY = {
    "attach_monitor": ("repro.check.verify", "attach_monitor"),
    "verify_conservation": ("repro.check.verify", "verify_conservation"),
    "run_ordering_oracle": ("repro.check.oracles", "run_ordering_oracle"),
    "run_loopback_oracle": ("repro.check.oracles", "run_loopback_oracle"),
    "run_fault_oracle": ("repro.check.oracles", "run_fault_oracle"),
    "run_all_oracles": ("repro.check.oracles", "run_all_oracles"),
    "OracleReport": ("repro.check.oracles", "OracleReport"),
    "FuzzReport": ("repro.check.fuzz", "FuzzReport"),
    "fuzz": ("repro.check.fuzz", "fuzz"),
    "replay": ("repro.check.fuzz", "replay"),
    "run_monitored": ("repro.check.fuzz", "run_monitored"),
    "sample_point": ("repro.check.fuzz", "sample_point"),
    "golden_digest": ("repro.check.golden", "golden_digest"),
    "golden_specs": ("repro.check.golden", "golden_specs"),
}

__all__ = [
    "NULL_MONITOR",
    "InvariantMonitor",
    "InvariantViolation",
    "NullInvariantMonitor",
    *sorted(_LAZY),
]


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
