"""Differential oracles: paired runs diffed field-by-field.

Each oracle runs two configurations that must agree on some functional
contract even though their *performance* differs, and reports every
compared field:

* :func:`run_ordering_oracle` — the paper's two ordering
  implementations (``SOFTWARE`` lock-based scan vs ``RMW``
  ``setb``/``update``) applied to one randomized mark/skip/commit
  schedule must produce identical board state after every commit.
  This is the oracle that catches a corrupted commit scan.
* :func:`run_loopback_oracle` — a 1-NIC fabric loopback drives the
  same firmware/assist/memory pipeline as a bare
  :class:`~repro.nic.throughput.ThroughputSimulator`; delivered
  goodput must agree within a small in-flight residual.
* :func:`run_fault_oracle` — a faulted run and its clean twin: the
  clean run must show zero holes and no fault counters, and the
  faulted run must satisfy the accounting identity
  ``delivered + holes + drops (+ in-flight) == injected``.

All oracles run with an armed :class:`InvariantMonitor` attached, so a
run that *completes* but passed through an illegal intermediate state
still fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.check.monitor import InvariantMonitor, InvariantViolation
from repro.check.verify import attach_monitor, verify_conservation

#: Delivered-goodput tolerance for the loopback oracle: the residual is
#: a constant few frames in flight across window boundaries, so it
#: shrinks with the measure window (see benchmarks/bench_fabric_overhead).
LOOPBACK_TOLERANCE = 0.05


@dataclass
class OracleCheck:
    """One compared field."""

    name: str
    ok: bool
    left: Any
    right: Any
    detail: str = ""

    def __str__(self) -> str:
        mark = "ok " if self.ok else "FAIL"
        extra = f" [{self.detail}]" if self.detail else ""
        return f"  {mark} {self.name}: {self.left!r} vs {self.right!r}{extra}"


@dataclass
class OracleReport:
    """Outcome of one oracle (all compared fields, pass/fail)."""

    oracle: str
    checks: List[OracleCheck] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[OracleCheck]:
        return [check for check in self.checks if not check.ok]

    def add(self, name: str, left: Any, right: Any, ok: Optional[bool] = None,
            detail: str = "") -> None:
        self.checks.append(OracleCheck(
            name=name,
            ok=(left == right) if ok is None else ok,
            left=left,
            right=right,
            detail=detail,
        ))

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.oracle}: "
            f"{sum(c.ok for c in self.checks)}/{len(self.checks)} fields agree"
        )


# ----------------------------------------------------------------------
# Oracle 1: software vs RMW ordering equivalence
# ----------------------------------------------------------------------
def run_ordering_oracle(
    seed: int = 0,
    rounds: int = 200,
    ring_size: int = 64,
    skip_rate: float = 0.1,
) -> OracleReport:
    """Drive both ordering implementations through one random schedule.

    Every round marks a shuffled batch of in-window sequences (a
    fraction become fault holes via :meth:`skip`) on *both* boards,
    commits both, and diffs the functional state field-by-field.  The
    boards use the same :class:`~repro.isa.machine.Memory` bitmap
    semantics as the assembly firmware, so divergence here means one
    implementation's mark or commit scan is wrong.
    """
    from repro.firmware.ordering import OrderingBoard, OrderingMode

    rng = random.Random(f"ordering-oracle:{seed}")
    monitor = InvariantMonitor()
    sw = OrderingBoard(ring_size, OrderingMode.SOFTWARE, name="sw")
    rmw = OrderingBoard(ring_size, OrderingMode.RMW, name="rmw")
    sw.monitor = monitor
    rmw.monitor = monitor

    report = OracleReport("ordering sw-vs-rmw")
    next_seq = 0
    outstanding: List[int] = []
    for round_index in range(rounds):
        # Issue a batch of new sequence numbers (bounded by the window).
        window_left = ring_size - (next_seq - sw.commit_seq)
        batch = rng.randint(0, max(0, min(8, window_left)))
        fresh = list(range(next_seq, next_seq + batch))
        next_seq += batch
        outstanding.extend(fresh)
        # Complete a random subset, out of order.
        rng.shuffle(outstanding)
        complete = outstanding[: rng.randint(0, len(outstanding))]
        outstanding = outstanding[len(complete):]
        for seq in complete:
            if rng.random() < skip_rate:
                sw.skip(seq)
                rmw.skip(seq)
            else:
                sw.mark_done(seq)
                rmw.mark_done(seq)
        sw_committed, _ = sw.commit()
        rmw_committed, _ = rmw.commit()
        state_ok = (
            sw_committed == rmw_committed
            and sw.commit_seq == rmw.commit_seq
            and sw.committed == rmw.committed
            and sw.marked == rmw.marked
            and sw.skipped == rmw.skipped
            and sw.pending == rmw.pending
        )
        if not state_ok:
            report.add(
                f"round[{round_index}].state",
                {
                    "committed_now": sw_committed,
                    "commit_seq": sw.commit_seq,
                    "committed": sw.committed,
                    "marked": sw.marked,
                    "skipped": sw.skipped,
                    "pending": sw.pending,
                },
                {
                    "committed_now": rmw_committed,
                    "commit_seq": rmw.commit_seq,
                    "committed": rmw.committed,
                    "marked": rmw.marked,
                    "skipped": rmw.skipped,
                    "pending": rmw.pending,
                },
                detail="software board vs RMW board",
            )
            break
    else:
        report.add("rounds", rounds, rounds, ok=True)
        report.add("final.commit_seq", sw.commit_seq, rmw.commit_seq)
        report.add("final.committed", sw.committed, rmw.committed)
        report.add("final.marked", sw.marked, rmw.marked)
        report.add("final.skipped", sw.skipped, rmw.skipped)
        report.add("final.pending", sw.pending, rmw.pending)
    report.add("monitor.violations", len(monitor.violations), 0)
    report.notes.append(monitor.summary())
    # The oracle must not be vacuous: real commits must have happened.
    report.add("progress", sw.commit_seq > 0, True,
               detail=f"commit pointer reached {sw.commit_seq}")
    return report


# ----------------------------------------------------------------------
# Oracle 2: fabric loopback vs bare simulator
# ----------------------------------------------------------------------
def run_loopback_oracle(
    config=None,
    warmup_s: float = 0.2e-3,
    measure_s: float = 0.8e-3,
    tolerance: float = LOOPBACK_TOLERANCE,
    fast: bool = False,
) -> OracleReport:
    """1-NIC fabric loopback vs bare ``ThroughputSimulator``.

    ``fast=True`` runs both simulators on the batched hot path so the
    differential oracle exercises the fast kernel end to end.
    """
    from repro.fabric import FabricSimulator, FabricSpec
    from repro.nic.config import NicConfig
    from repro.nic.throughput import ThroughputSimulator
    from repro.units import mhz

    if config is None:
        # Compute-bound point so both paths hit the same bottleneck.
        config = NicConfig(cores=2, core_frequency_hz=mhz(133))

    report = OracleReport("fabric-loopback vs bare")

    bare_monitor = InvariantMonitor()
    bare_sim = ThroughputSimulator(config, 1472, fast=fast)
    attach_monitor(bare_sim, bare_monitor)
    bare = bare_sim.run(warmup_s=warmup_s, measure_s=measure_s)
    verify_conservation(bare_sim, monitor=bare_monitor)

    loop_monitor = InvariantMonitor()
    fabric = FabricSimulator(config, FabricSpec.loopback(), fast=fast)
    attach_monitor(fabric, loop_monitor)
    fabric_result = fabric.run(warmup_s=warmup_s, measure_s=measure_s)
    verify_conservation(fabric, monitor=loop_monitor)

    flow = fabric_result.primary_flow
    bare_gbps = bare.rx_payload_bytes * 8 / measure_s / 1e9
    divergence = (
        abs(flow.goodput_gbps - bare_gbps) / bare_gbps if bare_gbps else 1.0
    )
    report.add("loopback.lost", flow.lost, 0)
    report.add(
        "goodput_gbps",
        round(flow.goodput_gbps, 4),
        round(bare_gbps, 4),
        ok=divergence <= tolerance,
        detail=f"divergence {divergence:.2%} (limit {tolerance:.0%})",
    )
    report.add("loopback.delivered_nonzero", flow.delivered > 0, True)
    report.add("monitor.violations",
               len(bare_monitor.violations) + len(loop_monitor.violations), 0)
    report.notes.append(f"bare: {bare_monitor.summary()}")
    report.notes.append(f"loopback: {loop_monitor.summary()}")
    return report


# ----------------------------------------------------------------------
# Oracle 3: faulted vs clean accounting identities
# ----------------------------------------------------------------------
def run_fault_oracle(
    config=None,
    fault_plan=None,
    warmup_s: float = 0.0,
    measure_s: float = 0.6e-3,
    fast: bool = False,
) -> OracleReport:
    """A faulted run against its clean twin.

    With no warmup the measured window covers the whole run, so the
    result-level identity ``injected == delivered + holes + drops +
    in_flight`` is exact (the in-flight population at the end of the
    run is bounded by the ordering ring).
    """
    from repro.faults import FaultPlan
    from repro.nic.config import NicConfig
    from repro.nic.throughput import ThroughputSimulator
    from repro.units import mhz

    if config is None:
        config = NicConfig(cores=2, core_frequency_hz=mhz(133))
    if fault_plan is None:
        fault_plan = FaultPlan(
            seed=7, rx_fcs_rate=0.01, sdram_error_rate=0.002,
            pci_stall_rate=0.001,
        )

    report = OracleReport("faulted vs clean accounting")

    clean_monitor = InvariantMonitor()
    clean_sim = ThroughputSimulator(config, 1472, fast=fast)
    attach_monitor(clean_sim, clean_monitor)
    clean = clean_sim.run(warmup_s=warmup_s, measure_s=measure_s)
    verify_conservation(clean_sim, monitor=clean_monitor)

    fault_monitor = InvariantMonitor()
    fault_sim = ThroughputSimulator(config, 1472, fault_plan=fault_plan, fast=fast)
    attach_monitor(fault_sim, fault_monitor)
    faulted = fault_sim.run(warmup_s=warmup_s, measure_s=measure_s)
    verify_conservation(fault_sim, monitor=fault_monitor)

    # Clean twin: no fault artifacts at all.
    report.add("clean.rx_holes", clean.rx_holes, 0)
    report.add("clean.fault_counters",
               {k: v for k, v in clean.fault_counters.items() if v}, {})

    # Faulted run: exact conservation identity over run *totals* (every
    # consumed sequence number is delivered, a hole, a tail drop, or
    # still in flight at the end).
    in_flight = (
        fault_sim.mac_rx.frames_accepted - fault_sim.board_rx.commit_seq
    )
    report.add(
        "faulted.identity",
        fault_sim.mac_rx._next_seq,
        fault_sim._rx_done_frames
        + fault_sim._rx_hole_frames
        + fault_sim._rx_dropped
        + in_flight,
        detail="injected == delivered + holes + drops + in_flight",
    )
    report.add("faulted.in_flight_bound",
               0 <= in_flight <= config.ordering_ring, True,
               detail=f"in_flight={in_flight}")
    # Windowed result fields obey the same identity up to the in-flight
    # populations at the two window edges (each bounded by the ring).
    window_slack = faulted.rx_offered - (
        faulted.rx_frames + faulted.rx_holes + faulted.rx_dropped
    )
    report.add("faulted.window_identity",
               abs(window_slack) <= config.ordering_ring, True,
               detail=f"window in-flight delta {window_slack} "
                      f"(bound ±{config.ordering_ring})")
    report.add("faulted.holes_nonzero", faulted.rx_holes > 0, True,
               detail="fault plan must actually inject (non-vacuous oracle)")
    report.add("faulted.holes_counted",
               faulted.rx_holes
               <= faulted.fault_counters.get("rx_fcs_drops", 0.0), True,
               detail="committed holes never exceed injected FCS drops")
    report.add("monitor.violations",
               len(clean_monitor.violations) + len(fault_monitor.violations),
               0)
    report.notes.append(f"clean: {clean_monitor.summary()}")
    report.notes.append(f"faulted: {fault_monitor.summary()}")
    return report


# ----------------------------------------------------------------------
def run_all_oracles(seed: int = 0, fast: bool = False) -> List[OracleReport]:
    """The full oracle battery (CLI ``repro check`` default).

    ``fast`` selects the batched kernel path for the simulator-backed
    oracles (the ordering oracle drives ring boards directly and has no
    kernel to switch).
    """
    reports = [run_ordering_oracle(seed=seed)]
    try:
        reports.append(run_loopback_oracle(fast=fast))
        reports.append(run_fault_oracle(fast=fast))
    except InvariantViolation as violation:
        failed = OracleReport("conservation")
        failed.add("verify_conservation", str(violation), None, ok=False)
        reports.append(failed)
    return reports
