"""Seeded fuzzing over the experiment space, with shrink and replay.

The fuzzer samples random :class:`~repro.exp.spec.RunSpec` points —
configs, workloads, optional :class:`~repro.faults.FaultPlan` fault
injection and optional :class:`~repro.fabric.spec.FabricSpec` multi-NIC
topologies — and runs each with an armed
:class:`~repro.check.monitor.InvariantMonitor` plus the post-run
:func:`~repro.check.verify.verify_conservation` identities.

Every case is a pure function of ``(seed, index)``: the sampler derives
its RNG from the string ``"{seed}:{index}"`` (Python hashes ``str``
seeds with SHA-512, stable across runs and platforms), so a failing
case needs only those two integers — plus the names of the shrink
transforms that were applied — to be reproduced exactly.  That triple
*is* the replay file:

.. code-block:: json

    {"version": 1, "seed": 0, "index": 17,
     "shrinks": ["drop_fabric", "single_core"], "error": "..."}

``repro check --replay file.json`` re-derives the spec and re-runs it
deterministically.  Shrinking is greedy over a fixed list of named,
order-deterministic simplifications (drop the fabric, drop the fault
plan, collapse to one core, ...): a transform is kept only if the
simplified case still fails, so the recorded shrink list always maps
the sampled point to a *minimal still-failing* configuration.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.monitor import InvariantMonitor
from repro.check.verify import attach_monitor, verify_conservation

REPLAY_VERSION = 1

#: The fuzzer keeps windows short: invariants are checked per event, so
#: a few hundred microseconds of simulated traffic exercises thousands
#: of checks per case while keeping ``--fuzz 25`` CI-cheap.
WARMUP_S = 0.05e-3
MEASURE_S = 0.2e-3


# ----------------------------------------------------------------------
# Sampling
# ----------------------------------------------------------------------
def _case_rng(seed: int, index: int) -> random.Random:
    return random.Random(f"repro-fuzz:{seed}:{index}")


def sample_point(rng: random.Random):
    """One random :class:`RunSpec` drawn from the supported space."""
    from repro.exp.spec import RunSpec, WorkloadSpec
    from repro.fabric.spec import FabricSpec
    from repro.faults import FaultPlan
    from repro.firmware.ordering import OrderingMode
    from repro.nic.config import NicConfig
    from repro.units import mhz

    config = NicConfig(
        cores=rng.choice([1, 2, 4, 6]),
        core_frequency_hz=mhz(rng.choice([100, 133, 166, 200])),
        scratchpad_banks=rng.choice([2, 4, 8]),
        ordering_mode=rng.choice(list(OrderingMode)),
        checksum_offload=rng.choice(["none", "none", "assist", "firmware"]),
        task_level_firmware=rng.random() < 0.15,
    )

    if rng.random() < 0.3:
        workload = WorkloadSpec.imix(
            offered_fraction=rng.choice([0.6, 0.8, 1.0]),
            rx_burst_frames=rng.choice([1, 1, 4]),
        )
    else:
        workload = WorkloadSpec(
            udp_payload_bytes=rng.choice([18, 64, 256, 512, 1472]),
            offered_fraction=rng.choice([0.5, 0.8, 1.0]),
            rx_burst_frames=rng.choice([1, 1, 2, 8]),
        )

    fault_plan = None
    if rng.random() < 0.45:
        fault_plan = FaultPlan(
            seed=rng.randrange(1 << 16),
            rx_fcs_rate=rng.choice([0.0, 0.005, 0.02]),
            sdram_error_rate=rng.choice([0.0, 0.001, 0.01]),
            pci_stall_rate=rng.choice([0.0, 0.002]),
            event_queue_depth=rng.choice([0, 0, 24]),
        )

    fabric_spec = None
    if rng.random() < 0.3:
        fabric_spec = FabricSpec.rpc_pair(
            seed=rng.randrange(1 << 16),
            concurrency=rng.choice([1, 4]),
        )
        if rng.random() < 0.5:
            fabric_spec = dataclasses.replace(
                fabric_spec,
                switch=True,
                port_queue_frames=rng.choice([2, 8]),
            )

    return RunSpec(
        config=config,
        workload=workload,
        warmup_s=WARMUP_S,
        measure_s=MEASURE_S,
        fault_plan=fault_plan,
        fabric_spec=fabric_spec,
        label="fuzz",
    )


# ----------------------------------------------------------------------
# Monitored execution
# ----------------------------------------------------------------------
def run_monitored(spec) -> Tuple[object, InvariantMonitor, Dict[str, object]]:
    """Run one spec with monitors armed; returns (result, monitor, identities).

    Raises :exc:`InvariantViolation` (or whatever the simulator raises)
    on failure — the caller decides whether that is a fuzz finding or a
    test failure.
    """
    from repro.nic.throughput import ThroughputSimulator

    monitor = InvariantMonitor()
    if spec.fabric_spec is not None:
        from repro.fabric import FabricSimulator

        simulator = FabricSimulator(
            spec.config, spec.fabric_spec, fault_plan=spec.fault_plan
        )
    else:
        workload = spec.workload
        simulator = ThroughputSimulator(
            spec.config,
            workload.udp_payload_bytes,
            offered_fraction=workload.offered_fraction,
            size_model=workload.build_size_model(),
            rx_burst_frames=workload.rx_burst_frames,
            fault_plan=spec.fault_plan,
        )
    attach_monitor(simulator, monitor)
    result = simulator.run(spec.warmup_s, spec.measure_s)
    identities = verify_conservation(simulator, monitor=monitor)
    return result, monitor, identities


# ----------------------------------------------------------------------
# Shrinking (named, deterministic transforms)
# ----------------------------------------------------------------------
def _drop_fabric(spec):
    return dataclasses.replace(spec, fabric_spec=None)


def _drop_faults(spec):
    return dataclasses.replace(spec, fault_plan=None)


def _plain_switch(spec):
    if spec.fabric_spec is None or not spec.fabric_spec.switch:
        return spec
    return dataclasses.replace(
        spec, fabric_spec=dataclasses.replace(spec.fabric_spec, switch=False)
    )


def _constant_workload(spec):
    from repro.exp.spec import WorkloadSpec

    return dataclasses.replace(spec, workload=WorkloadSpec())


def _single_core(spec):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, cores=1)
    )


def _default_ordering(spec):
    from repro.firmware.ordering import OrderingMode

    return dataclasses.replace(
        spec,
        config=dataclasses.replace(
            spec.config, ordering_mode=OrderingMode.RMW
        ),
    )


def _frame_level(spec):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, task_level_firmware=False)
    )


def _no_checksum(spec):
    return dataclasses.replace(
        spec, config=dataclasses.replace(spec.config, checksum_offload="none")
    )


def _short_window(spec):
    return dataclasses.replace(spec, warmup_s=0.0, measure_s=0.1e-3)


#: Ordered registry; names are what replay files record.
SHRINK_TRANSFORMS: Dict[str, Callable] = {
    "drop_fabric": _drop_fabric,
    "drop_faults": _drop_faults,
    "plain_switch": _plain_switch,
    "constant_workload": _constant_workload,
    "single_core": _single_core,
    "default_ordering": _default_ordering,
    "frame_level_firmware": _frame_level,
    "no_checksum": _no_checksum,
    "short_window": _short_window,
}


def apply_shrinks(spec, shrinks: List[str]):
    for name in shrinks:
        spec = SHRINK_TRANSFORMS[name](spec)
    return spec


def _case_fails(spec) -> Optional[str]:
    """Run one case; returns the failure string, or None on success."""
    try:
        run_monitored(spec)
    except Exception as error:  # noqa: BLE001 - any crash is a finding;
        # the replay file reproduces it either way.
        return f"{type(error).__name__}: {error}"
    return None


def shrink_failure(spec, first_error: str) -> Tuple[List[str], str]:
    """Greedy minimization; returns (kept shrink names, final error)."""
    kept: List[str] = []
    error = first_error
    progress = True
    while progress:
        progress = False
        for name, transform in SHRINK_TRANSFORMS.items():
            if name in kept:
                continue
            candidate = transform(apply_shrinks(spec, kept))
            if candidate == apply_shrinks(spec, kept):
                continue  # transform was a no-op for this spec
            still_failing = _case_fails(candidate)
            if still_failing is not None:
                kept.append(name)
                error = still_failing
                progress = True
    return kept, error


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@dataclass
class FuzzFailure:
    """One failing case, in replayable form."""

    seed: int
    index: int
    shrinks: List[str]
    error: str
    original_error: str
    replay_path: Optional[str] = None

    def replay_payload(self) -> Dict[str, object]:
        return {
            "version": REPLAY_VERSION,
            "seed": self.seed,
            "index": self.index,
            "shrinks": list(self.shrinks),
            "error": self.error,
        }


@dataclass
class FuzzReport:
    """Outcome of one ``repro check --fuzz`` invocation."""

    seed: int
    cases: int = 0
    checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] fuzz: {self.cases} cases (seed {self.seed}), "
            f"{self.checks} runtime checks, {len(self.failures)} failure(s)"
        )


def spec_for_case(seed: int, index: int, shrinks: Optional[List[str]] = None):
    """Deterministically rebuild the spec for ``(seed, index, shrinks)``."""
    spec = sample_point(_case_rng(seed, index))
    if shrinks:
        spec = apply_shrinks(spec, shrinks)
    return spec


def fuzz(
    cases: int,
    seed: int = 0,
    replay_dir: Optional[str] = None,
    progress=None,
    shrink: bool = True,
) -> FuzzReport:
    """Run ``cases`` random monitored simulations.

    Failures are shrunk to a minimal still-failing configuration and —
    when ``replay_dir`` is given — written there as
    ``replay-<seed>-<index>.json`` files for ``repro check --replay``.
    """
    import os

    report = FuzzReport(seed=seed)
    for index in range(cases):
        spec = spec_for_case(seed, index)
        report.cases += 1
        try:
            _result, monitor, _identities = run_monitored(spec)
            report.checks += monitor.total_checks()
            if progress is not None:
                progress.write(
                    f"fuzz[{index}] ok: {spec.config.label} "
                    f"faults={'y' if spec.fault_plan else 'n'} "
                    f"fabric={'y' if spec.fabric_spec else 'n'} "
                    f"({monitor.total_checks()} checks)\n"
                )
        except Exception as error:  # noqa: BLE001 - every crash is a finding
            original = f"{type(error).__name__}: {error}"
            shrinks: List[str] = []
            final_error = original
            if shrink:
                shrinks, final_error = shrink_failure(spec, original)
            failure = FuzzFailure(
                seed=seed,
                index=index,
                shrinks=shrinks,
                error=final_error,
                original_error=original,
            )
            report.failures.append(failure)
            if replay_dir is not None:
                os.makedirs(replay_dir, exist_ok=True)
                path = os.path.join(
                    replay_dir, f"replay-{seed}-{index}.json"
                )
                write_replay(failure, path)
                failure.replay_path = path
                if progress is not None:
                    progress.write(f"fuzz[{index}] FAIL -> {path}\n")
            elif progress is not None:
                progress.write(f"fuzz[{index}] FAIL: {final_error}\n")
    return report


# ----------------------------------------------------------------------
# Replay files
# ----------------------------------------------------------------------
def write_replay(failure: FuzzFailure, path: str) -> None:
    payload = failure.replay_payload()
    # Human context: the described spec (informational; reconstruction
    # uses only seed/index/shrinks so the file cannot go stale).
    from repro.exp.spec import describe

    payload["described_spec"] = describe(
        spec_for_case(failure.seed, failure.index, failure.shrinks)
    )
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class ReplayOutcome:
    reproduced: bool
    error: Optional[str]
    expected_error: Optional[str]
    spec: object

    def summary(self) -> str:
        if self.error is None:
            return "[PASS?] replay ran clean — failure no longer reproduces"
        return f"[REPRODUCED] {self.error}"


def replay(path: str) -> ReplayOutcome:
    """Re-execute a replay file deterministically."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != REPLAY_VERSION:
        raise ValueError(
            f"unsupported replay version {payload.get('version')!r} "
            f"(expected {REPLAY_VERSION})"
        )
    unknown = [
        name for name in payload.get("shrinks", [])
        if name not in SHRINK_TRANSFORMS
    ]
    if unknown:
        raise ValueError(f"replay uses unknown shrink transforms: {unknown}")
    spec = spec_for_case(
        int(payload["seed"]), int(payload["index"]), payload.get("shrinks", [])
    )
    error = _case_fails(spec)
    return ReplayOutcome(
        reproduced=error is not None,
        error=error,
        expected_error=payload.get("error"),
        spec=spec,
    )
