"""Runtime invariant monitors (null-object pattern, like ``Tracer``).

The simulator's correctness story rests on properties that are easy to
break silently: the kernel clock must never move backwards, every
scheduled event ticket must be fired / cancelled / discarded exactly
once, the ordering boards' commit pointers must advance monotonically
and only across marked-or-skipped slots, locks must grant in FIFO
reservation order, the distributed event queue must conserve
``enqueues - dequeues == depth``, and the fabric wire must conserve
``injected == forwarded + dropped + queued`` (``queued`` is only
non-zero while a QoS-configured switch holds frames in per-class
queues; the legacy wire resolves every frame at transmit time).

This module provides the *monitoring* half of ``repro.check``:

* :class:`NullInvariantMonitor` — the always-off default.  Every
  instrumented object holds :data:`NULL_MONITOR` unless a monitor is
  explicitly attached, and every hook site is gated by
  ``if self.monitor.enabled:`` so a disabled run executes exactly the
  same instruction stream (and produces byte-identical results) as a
  build without this module.
* :class:`InvariantMonitor` — the armed monitor.  Hooks record shadow
  state (live ticket sets, per-board outstanding slots, per-lock grant
  fronts) and raise :exc:`InvariantViolation` the moment an invariant
  breaks, with enough context to localize the bug.

This module deliberately imports nothing from ``repro`` — it sits
*below* the kernel/firmware/mem/fabric layers that import it, exactly
like ``repro.obs.tracer``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple


class InvariantViolation(AssertionError):
    """An armed :class:`InvariantMonitor` detected a broken invariant.

    Subclasses :class:`AssertionError` so test harnesses and pytest
    treat it as an assertion failure, while still being catchable
    specifically (the fuzz harness catches exactly this).
    """

    def __init__(self, invariant: str, message: str, **context: Any) -> None:
        self.invariant = invariant
        self.context = dict(context)
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(self.context.items()))
        super().__init__(f"[{invariant}] {message}" + (f" ({detail})" if detail else ""))


class NullInvariantMonitor:
    """Does nothing, as fast as possible.

    ``enabled`` is a class attribute so the hot-path gate
    ``if self.monitor.enabled:`` costs one attribute load and a branch
    — the same pattern (and cost) as :class:`repro.obs.tracer.NullTracer`.
    """

    enabled = False

    # -- kernel ---------------------------------------------------------
    def event_scheduled(self, ticket: int, when_ps: int, now_ps: int) -> None:
        pass

    def event_fired(self, ticket: int, when_ps: int, now_ps: int) -> None:
        pass

    def event_cancelled(self, ticket: int) -> None:
        pass

    def event_discarded(self, ticket: int) -> None:
        pass

    # -- ordering boards ------------------------------------------------
    def board_marked(self, board: Any, seq: int) -> None:
        pass

    def board_skipped(self, board: Any, seq: int) -> None:
        pass

    def board_committed(self, board: Any, old_seq: int, new_seq: int, count: int) -> None:
        pass

    # -- distributed event queue / event register -----------------------
    def queue_pushed(self, queue: Any) -> None:
        pass

    def queue_popped(self, queue: Any) -> None:
        pass

    def register_claimed(self, register: Any, kind: Any, core_id: int) -> None:
        pass

    def register_released(self, register: Any, kind: Any, core_id: int) -> None:
        pass

    # -- locks / cores --------------------------------------------------
    def lock_acquired(self, lock: Any, request_ps: int, grant_ps: int,
                      free_at_ps: int) -> None:
        pass

    def core_claimed(self, owner: Any, core_id: int) -> None:
        pass

    def core_released(self, owner: Any, core_id: int) -> None:
        pass

    # -- memories -------------------------------------------------------
    def scratchpad_access(self, scratchpad: Any, access: Any) -> None:
        pass

    def sdram_transfer(self, sdram: Any, request: Any, cycle: int,
                       nbytes: int) -> None:
        pass

    # -- multi-queue host rings -----------------------------------------
    def ring_posted(self, host: Any, ring_index: int, direction: str,
                    count: int) -> None:
        pass

    def ring_completed(self, host: Any, ring_index: int, direction: str,
                       count: int) -> None:
        pass

    # -- fabric wire ----------------------------------------------------
    def wire_injected(self, wire: Any, src: int, dst: int) -> None:
        pass

    def wire_forwarded(self, wire: Any, src: int, dst: int, deliver_ps: int,
                       switched: bool) -> None:
        pass

    def wire_dropped(self, wire: Any, dst: int) -> None:
        pass

    def wire_port_departure(self, wire: Any, port: int, out_start_ps: int,
                            out_end_ps: int, prev_free_ps: int) -> None:
        pass

    # -- per-class (QoS) switch ports -----------------------------------
    def qos_injected(self, wire: Any, port: int, cls: int) -> None:
        pass

    def qos_enqueued(self, wire: Any, port: int, cls: int, depth: int) -> None:
        pass

    def qos_forwarded(self, wire: Any, port: int, cls: int, depth: int) -> None:
        pass

    def qos_dropped(self, wire: Any, port: int, cls: int, kind: str) -> None:
        pass

    def qos_pause(self, wire: Any, port: int, cls: int, paused: bool) -> None:
        pass

    def qos_port_idle(self, wire: Any, port: int, backlog: int) -> None:
        pass

    # -- composed topologies (multi-switch graph wire) ------------------
    def topo_route(self, wire: Any, flow: str, src: int, dst: int,
                   path: Any, hop_bound: int) -> None:
        pass

    def topo_transit(self, wire: Any, delta: int) -> None:
        pass

    def topo_link_entered(self, wire: Any, link: str) -> None:
        pass

    def topo_link_forwarded(self, wire: Any, link: str) -> None:
        pass

    def topo_link_dropped(self, wire: Any, link: str) -> None:
        pass

    # -- reporting ------------------------------------------------------
    def report(self) -> Dict[str, int]:
        return {}


#: Shared no-op instance installed by default on every instrumented object.
NULL_MONITOR = NullInvariantMonitor()


class _BoardShadow:
    """Monitor-side mirror of one :class:`OrderingBoard`."""

    __slots__ = ("name", "ring_size", "commit_seq", "outstanding")

    def __init__(self, name: str, ring_size: int, commit_seq: int) -> None:
        self.name = name
        self.ring_size = ring_size
        self.commit_seq = commit_seq
        # seq -> "mark" | "skip" for marked-but-uncommitted slots.
        self.outstanding: Dict[int, str] = {}


class InvariantMonitor(NullInvariantMonitor):
    """Records shadow state and raises on the first broken invariant.

    One monitor instance may watch an arbitrary set of objects — a whole
    :class:`~repro.fabric.sim.FabricSimulator` with N endpoints sharing
    one kernel is fine — because all shadow state is keyed by object
    identity.  Attach with :func:`repro.check.attach_monitor`.

    ``strict`` (default) raises :exc:`InvariantViolation` immediately;
    with ``strict=False`` violations are collected in
    :attr:`violations` instead, which the differential oracles use to
    report *all* broken properties of a run rather than the first.
    """

    enabled = True

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.violations: List[InvariantViolation] = []
        self.checks: Dict[str, int] = {}
        # Kernel shadow: tickets physically live in some heap.
        self._live_tickets: set = set()
        self._cancelled_tickets: set = set()
        self._last_fire_ps: int = 0
        self.events_scheduled = 0
        self.events_fired = 0
        self.events_cancelled = 0
        self.events_discarded = 0
        # Ordering boards / locks / cores / memories, keyed by identity.
        self._boards: Dict[int, _BoardShadow] = {}
        self._lock_free: Dict[int, int] = {}
        self._cores_busy: Dict[int, set] = {}
        self._register_holders: Dict[Tuple[int, Any], int] = {}
        self._sdram_bus_free: Dict[int, int] = {}
        # Fabric wires, keyed by identity.
        # [injected, forwarded, dropped, queued] — queued is the shadow
        # of frames parked in per-class QoS switch queues (always 0 on
        # the legacy wire, whose ports resolve frames at transmit time).
        self._wire_counts: Dict[int, List[int]] = {}
        self._wire_delivery: Dict[Tuple[int, str, int], int] = {}
        self._wire_port_free: Dict[Tuple[int, int], int] = {}
        # Per-(wire, port, class) QoS shadows:
        # [enqueued, forwarded, tail drops, red drops] and pause state.
        self._qos_counts: Dict[Tuple[int, int, int], List[int]] = {}
        self._qos_paused: Dict[Tuple[int, int, int], bool] = {}
        # Composed-topology shadows: per-(wire, link) [entered,
        # forwarded, dropped] counters and resolved-route records.
        self._topo_links: Dict[Tuple[int, str], List[int]] = {}
        self._topo_routes: Dict[Tuple[int, str, int, int], Any] = {}
        # Multi-queue host rings: (host id, ring, direction) ->
        # [posted, completed] descriptor counts.
        self._ring_counts: Dict[Tuple[int, int, str], List[int]] = {}
        # Strong references to every object with identity-keyed shadow
        # state.  ``id()`` values are only unique among *live* objects:
        # without the pin, a garbage-collected board's id can be reused
        # by a replacement board (N rings/boards churning against one
        # shared monitor make this likely), which would then inherit the
        # dead object's shadow and fail with a phantom violation.  The
        # mutation test in tests/test_check_monitor.py demonstrates the
        # pre-fix failure.
        self._pins: Dict[int, Any] = {}

    def _pin(self, obj: Any) -> None:
        self._pins.setdefault(id(obj), obj)

    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, **context: Any) -> None:
        violation = InvariantViolation(invariant, message, **context)
        self.violations.append(violation)
        if self.strict:
            raise violation

    def _count(self, invariant: str) -> None:
        self.checks[invariant] = self.checks.get(invariant, 0) + 1

    # ------------------------------------------------------------------
    # Kernel: clock monotonicity + ticket conservation
    # ------------------------------------------------------------------
    def event_scheduled(self, ticket: int, when_ps: int, now_ps: int) -> None:
        self._count("kernel.schedule")
        self.events_scheduled += 1
        if when_ps < now_ps:
            self._fail("kernel.schedule", "event scheduled in the past",
                       ticket=ticket, when_ps=when_ps, now_ps=now_ps)
        if ticket in self._live_tickets:
            self._fail("kernel.schedule", "ticket reused while still live",
                       ticket=ticket)
        self._live_tickets.add(ticket)

    def event_fired(self, ticket: int, when_ps: int, now_ps: int) -> None:
        self._count("kernel.fire")
        self.events_fired += 1
        if when_ps < now_ps:
            self._fail("kernel.clock", "clock would move backwards",
                       ticket=ticket, when_ps=when_ps, now_ps=now_ps)
        if when_ps < self._last_fire_ps:
            self._fail("kernel.clock", "fire time precedes previous fire",
                       ticket=ticket, when_ps=when_ps,
                       last_fire_ps=self._last_fire_ps)
        self._last_fire_ps = when_ps
        if ticket not in self._live_tickets:
            self._fail("kernel.ticket", "fired a ticket that was never live",
                       ticket=ticket)
        else:
            self._live_tickets.discard(ticket)
        if ticket in self._cancelled_tickets:
            self._fail("kernel.ticket", "fired a cancelled ticket",
                       ticket=ticket)

    def event_cancelled(self, ticket: int) -> None:
        self._count("kernel.cancel")
        self.events_cancelled += 1
        if ticket not in self._live_tickets:
            self._fail("kernel.ticket", "cancelled a ticket not in the heap",
                       ticket=ticket)
        self._cancelled_tickets.add(ticket)

    def event_discarded(self, ticket: int) -> None:
        self._count("kernel.discard")
        self.events_discarded += 1
        if ticket not in self._cancelled_tickets:
            self._fail("kernel.ticket", "discarded a ticket never cancelled",
                       ticket=ticket)
        else:
            self._cancelled_tickets.discard(ticket)
        self._live_tickets.discard(ticket)

    def check_ticket_conservation(self) -> None:
        """Post-run: scheduled == fired + discarded + still-live."""
        self._count("kernel.conservation")
        still_live = len(self._live_tickets)
        if self.events_scheduled != (
            self.events_fired + self.events_discarded + still_live
        ):
            self._fail(
                "kernel.conservation",
                "event tickets not conserved",
                scheduled=self.events_scheduled,
                fired=self.events_fired,
                discarded=self.events_discarded,
                live=still_live,
            )

    # ------------------------------------------------------------------
    # Ordering boards: commit-pointer monotonicity + hole-skip safety
    # ------------------------------------------------------------------
    def _board(self, board: Any) -> _BoardShadow:
        shadow = self._boards.get(id(board))
        if shadow is None:
            self._pin(board)
            shadow = _BoardShadow(
                getattr(board, "name", "board"),
                board.ring_size,
                board.commit_seq,
            )
            self._boards[id(board)] = shadow
        return shadow

    def board_marked(self, board: Any, seq: int) -> None:
        self._count("board.mark")
        shadow = self._board(board)
        if seq < shadow.commit_seq:
            self._fail("board.mark", "marked an already-committed sequence",
                       board=shadow.name, seq=seq, commit_seq=shadow.commit_seq)
        if seq >= shadow.commit_seq + shadow.ring_size:
            self._fail("board.mark", "mark would lap the ring",
                       board=shadow.name, seq=seq, commit_seq=shadow.commit_seq,
                       ring_size=shadow.ring_size)
        shadow.outstanding[seq] = "mark"

    def board_skipped(self, board: Any, seq: int) -> None:
        """Reclassify the just-marked ``seq`` as a hole (fault recovery)."""
        self._count("board.skip")
        shadow = self._board(board)
        if shadow.outstanding.get(seq) != "mark":
            self._fail("board.skip", "skip of a slot that was not just marked",
                       board=shadow.name, seq=seq)
        shadow.outstanding[seq] = "skip"

    def board_committed(self, board: Any, old_seq: int, new_seq: int,
                        count: int) -> None:
        self._count("board.commit")
        shadow = self._board(board)
        if old_seq != shadow.commit_seq:
            self._fail("board.commit", "commit pointer moved outside commit()",
                       board=shadow.name, observed=old_seq,
                       shadow=shadow.commit_seq)
        if new_seq < old_seq:
            self._fail("board.commit", "commit pointer moved backwards",
                       board=shadow.name, old=old_seq, new=new_seq)
        if new_seq - old_seq != count:
            self._fail("board.commit", "committed count disagrees with pointer",
                       board=shadow.name, old=old_seq, new=new_seq, count=count)
        if new_seq - old_seq > shadow.ring_size:
            self._fail("board.commit", "commit advanced more than one ring",
                       board=shadow.name, old=old_seq, new=new_seq)
        for seq in range(old_seq, new_seq):
            kind = shadow.outstanding.pop(seq, None)
            if kind is None:
                self._fail("board.commit",
                           "committed a slot never marked or skipped",
                           board=shadow.name, seq=seq)
        # Hole-skip safety / liveness: if the head slot is done (marked
        # or skipped — including a hole), the scan must advance past it.
        if count == 0 and old_seq in shadow.outstanding:
            self._fail("board.commit",
                       "commit scan wedged at a done slot",
                       board=shadow.name, seq=old_seq,
                       kind=shadow.outstanding[old_seq])
        shadow.commit_seq = new_seq
        if board.commit_seq != new_seq:
            self._fail("board.commit", "board pointer disagrees with commit",
                       board=shadow.name, pointer=board.commit_seq, new=new_seq)

    # ------------------------------------------------------------------
    # Distributed event queue: claim/complete conservation
    # ------------------------------------------------------------------
    def _check_queue(self, queue: Any, op: str) -> None:
        depth = len(queue)
        if queue.enqueues - queue.dequeues != depth:
            self._fail("queue.conservation",
                       "enqueues - dequeues != depth",
                       op=op, enqueues=queue.enqueues,
                       dequeues=queue.dequeues, depth=depth)
        if depth > queue.max_depth:
            self._fail("queue.depth", "queue deeper than its bound",
                       depth=depth, max_depth=queue.max_depth)

    def queue_pushed(self, queue: Any) -> None:
        self._count("queue.push")
        self._check_queue(queue, "push")

    def queue_popped(self, queue: Any) -> None:
        self._count("queue.pop")
        self._check_queue(queue, "pop")

    # ------------------------------------------------------------------
    # Event register: claim/release pairing
    # ------------------------------------------------------------------
    def register_claimed(self, register: Any, kind: Any, core_id: int) -> None:
        self._count("register.claim")
        self._pin(register)
        key = (id(register), kind)
        holder = self._register_holders.get(key)
        if holder is not None and holder != core_id:
            self._fail("register.claim", "event type claimed by two cores",
                       kind=str(kind), holder=holder, claimant=core_id)
        self._register_holders[key] = core_id

    def register_released(self, register: Any, kind: Any, core_id: int) -> None:
        self._count("register.release")
        key = (id(register), kind)
        holder = self._register_holders.pop(key, None)
        if holder != core_id:
            self._fail("register.release",
                       "release by a core that does not hold the claim",
                       kind=str(kind), holder=holder, releaser=core_id)

    # ------------------------------------------------------------------
    # Locks: FIFO grant discipline
    # ------------------------------------------------------------------
    def lock_acquired(self, lock: Any, request_ps: int, grant_ps: int,
                      free_at_ps: int) -> None:
        self._count("lock.acquire")
        self._pin(lock)
        prev_free = self._lock_free.get(id(lock), 0)
        expected = request_ps if request_ps > prev_free else prev_free
        if grant_ps != expected:
            self._fail("lock.fifo", "grant is not max(request, previous-free)",
                       lock=lock.name, request_ps=request_ps,
                       grant_ps=grant_ps, prev_free_ps=prev_free)
        if free_at_ps < grant_ps:
            self._fail("lock.hold", "lock freed before it was granted",
                       lock=lock.name, grant_ps=grant_ps, free_at_ps=free_at_ps)
        if free_at_ps < prev_free:
            self._fail("lock.fifo", "lock free point moved backwards",
                       lock=lock.name, free_at_ps=free_at_ps,
                       prev_free_ps=prev_free)
        self._lock_free[id(lock)] = free_at_ps

    # ------------------------------------------------------------------
    # Cores: claim/complete conservation
    # ------------------------------------------------------------------
    def core_claimed(self, owner: Any, core_id: int) -> None:
        self._count("core.claim")
        self._pin(owner)
        busy = self._cores_busy.setdefault(id(owner), set())
        if core_id in busy:
            self._fail("core.claim", "core dispatched while already busy",
                       core_id=core_id)
        busy.add(core_id)

    def core_released(self, owner: Any, core_id: int) -> None:
        self._count("core.release")
        self._pin(owner)
        busy = self._cores_busy.setdefault(id(owner), set())
        if core_id not in busy:
            self._fail("core.release", "idle core released", core_id=core_id)
        busy.discard(core_id)

    # ------------------------------------------------------------------
    # Memories
    # ------------------------------------------------------------------
    def scratchpad_access(self, scratchpad: Any, access: Any) -> None:
        self._count("scratchpad.access")
        if not 0 <= access.bank < scratchpad.banks:
            self._fail("scratchpad.bank", "bank index out of range",
                       bank=access.bank, banks=scratchpad.banks)
        if access.grant_cycle < access.request_cycle:
            self._fail("scratchpad.grant", "granted before requested",
                       request=access.request_cycle, grant=access.grant_cycle)
        if access.data_cycle <= access.grant_cycle:
            self._fail("scratchpad.data", "data returned at or before grant",
                       grant=access.grant_cycle, data=access.data_cycle)

    def sdram_transfer(self, sdram: Any, request: Any, cycle: int,
                       nbytes: int) -> None:
        self._count("sdram.transfer")
        gran = sdram.ACCESS_GRANULARITY_BYTES
        if request.transferred_bytes < nbytes:
            self._fail("sdram.padding", "padded burst smaller than payload",
                       nbytes=nbytes, padded=request.transferred_bytes)
        if request.transferred_bytes % gran:
            self._fail("sdram.padding", "burst not device-word aligned",
                       padded=request.transferred_bytes, granularity=gran)
        if request.start_cycle < cycle:
            self._fail("sdram.timing", "burst started before it was issued",
                       cycle=cycle, start=request.start_cycle)
        if request.finish_cycle <= request.start_cycle:
            self._fail("sdram.timing", "burst finished at or before start",
                       start=request.start_cycle, finish=request.finish_cycle)
        self._pin(sdram)
        prev_free = self._sdram_bus_free.get(id(sdram), 0)
        if sdram._bus_free_cycle < prev_free:
            self._fail("sdram.bus", "bus free point moved backwards",
                       free=sdram._bus_free_cycle, prev_free=prev_free)
        self._sdram_bus_free[id(sdram)] = sdram._bus_free_cycle

    # ------------------------------------------------------------------
    # Multi-queue host rings: per-ring descriptor conservation
    # ------------------------------------------------------------------
    def _ring(self, host: Any, ring_index: int, direction: str,
              posted_delta: int, completed_delta: int) -> List[int]:
        key = (id(host), ring_index, direction)
        counts = self._ring_counts.get(key)
        if counts is None:
            # Monitors attach after construction (and the initial
            # receive fill), so the baseline is the live counters minus
            # the delta being reported by this very hook.
            self._pin(host)
            ring = host.rings[ring_index]
            if direction == "rx":
                posted, completed = ring.rx_posted, ring.rx_completed
            else:
                posted, completed = ring.tx_posted, ring.tx_completed
            counts = [posted - posted_delta, completed - completed_delta]
            self._ring_counts[key] = counts
        return counts

    def _check_ring(self, host: Any, ring_index: int, direction: str,
                    counts: List[int]) -> None:
        ring = host.rings[ring_index]
        posted, completed = counts
        in_flight = posted - completed
        if in_flight < 0:
            self._fail("ring.conservation",
                       "completed descriptors exceed posted",
                       ring=ring_index, direction=direction,
                       posted=posted, completed=completed)
        if direction == "rx":
            live = (ring.rx_posted, ring.rx_completed)
            capacity = ring.recv_ring.capacity
            held = len(ring.recv_ring)
        else:
            live = (ring.tx_posted, ring.tx_completed)
            capacity = ring.send_ring.capacity // 2
            held = len(ring.send_ring) // 2
        if live != (posted, completed):
            self._fail("ring.conservation",
                       "ring counters disagree with observed hooks",
                       ring=ring_index, direction=direction,
                       live_posted=live[0], live_completed=live[1],
                       posted=posted, completed=completed)
        # The conservation identity itself: every posted descriptor is
        # either completed or still held in the ring (in flight).
        if in_flight != held:
            self._fail("ring.conservation",
                       "posted != completed + in-flight",
                       ring=ring_index, direction=direction,
                       posted=posted, completed=completed, in_flight=held)
        if in_flight > capacity:
            self._fail("ring.bound", "in-flight descriptors exceed capacity",
                       ring=ring_index, direction=direction,
                       in_flight=in_flight, capacity=capacity)

    def ring_posted(self, host: Any, ring_index: int, direction: str,
                    count: int) -> None:
        self._count("ring.post")
        counts = self._ring(host, ring_index, direction, count, 0)
        counts[0] += count
        self._check_ring(host, ring_index, direction, counts)

    def ring_completed(self, host: Any, ring_index: int, direction: str,
                       count: int) -> None:
        self._count("ring.complete")
        counts = self._ring(host, ring_index, direction, 0, count)
        counts[1] += count
        self._check_ring(host, ring_index, direction, counts)

    # ------------------------------------------------------------------
    # Fabric wire: conservation + per-port FIFO
    # ------------------------------------------------------------------
    def _wire(self, wire: Any) -> List[int]:
        counts = self._wire_counts.get(id(wire))
        if counts is None:
            self._pin(wire)
            counts = [0, 0, 0, 0]
            self._wire_counts[id(wire)] = counts
        return counts

    def _check_wire_conservation(self, wire: Any, counts: List[int]) -> None:
        injected, forwarded, dropped, queued = counts
        if queued < 0:
            self._fail("wire.conservation",
                       "more frames left QoS queues than entered",
                       queued=queued)
        if injected != forwarded + dropped + queued:
            self._fail("wire.conservation",
                       "injected != forwarded + dropped + queued",
                       injected=injected, forwarded=forwarded,
                       dropped=dropped, queued=queued)
        if wire.forwarded != forwarded or wire.drops != dropped:
            self._fail("wire.conservation",
                       "wire counters disagree with observed hooks",
                       wire_forwarded=wire.forwarded, wire_drops=wire.drops,
                       forwarded=forwarded, dropped=dropped)

    def wire_injected(self, wire: Any, src: int, dst: int) -> None:
        self._count("wire.inject")
        self._wire(wire)[0] += 1

    def wire_forwarded(self, wire: Any, src: int, dst: int, deliver_ps: int,
                       switched: bool) -> None:
        self._count("wire.forward")
        counts = self._wire(wire)
        counts[1] += 1
        self._check_wire_conservation(wire, counts)
        # Delivery order: per-source for direct links (each src MAC
        # serializes), per-destination-port once a switch serializes.
        key = (id(wire), "dst" if switched else "src", dst if switched else src)
        prev = self._wire_delivery.get(key)
        if prev is not None and deliver_ps < prev:
            self._fail("wire.fifo", "delivery order inverted",
                       switched=switched, src=src, dst=dst,
                       deliver_ps=deliver_ps, prev_ps=prev)
        self._wire_delivery[key] = deliver_ps

    def wire_dropped(self, wire: Any, dst: int) -> None:
        self._count("wire.drop")
        counts = self._wire(wire)
        counts[2] += 1
        self._check_wire_conservation(wire, counts)

    def wire_port_departure(self, wire: Any, port: int, out_start_ps: int,
                            out_end_ps: int, prev_free_ps: int) -> None:
        self._count("wire.port")
        if out_end_ps <= out_start_ps:
            self._fail("wire.port", "zero-time serialization",
                       port=port, start=out_start_ps, end=out_end_ps)
        if out_start_ps < prev_free_ps:
            self._fail("wire.port", "port serialized two frames at once",
                       port=port, start=out_start_ps, prev_free=prev_free_ps)
        shadow_key = (id(wire), port)
        shadow_free = self._wire_port_free.get(shadow_key, 0)
        if prev_free_ps != shadow_free:
            self._fail("wire.port", "port free point disagrees with shadow",
                       port=port, prev_free=prev_free_ps, shadow=shadow_free)
        self._wire_port_free[shadow_key] = out_end_ps

    # ------------------------------------------------------------------
    # Per-class (QoS) switch ports
    # ------------------------------------------------------------------
    # A QoS-configured switch resolves frames asynchronously: injection,
    # classification/admission, and the scheduler's serialization slot
    # are separate events.  The wire-level ``queued`` shadow covers the
    # whole unresolved window (switch-bound in flight *or* parked in a
    # class queue), so the global conservation identity holds at every
    # hook, and per-(port, class) shadows pin the queue-depth identity
    # ``depth == enqueued - forwarded`` on every move.
    def _qos(self, wire: Any, port: int, cls: int) -> List[int]:
        key = (id(wire), port, cls)
        counts = self._qos_counts.get(key)
        if counts is None:
            self._pin(wire)
            # [injected, enqueued, forwarded, tail drops, red drops]
            counts = [0, 0, 0, 0, 0]
            self._qos_counts[key] = counts
        return counts

    def _check_qos_class(self, port: int, cls: int, counts: List[int],
                         depth: int) -> None:
        injected, enqueued, forwarded, tail, red = counts
        if depth != enqueued - forwarded:
            self._fail("qos.conservation",
                       "class queue depth != enqueued - forwarded",
                       port=port, cls=cls, depth=depth,
                       enqueued=enqueued, forwarded=forwarded)
        if enqueued + tail + red > injected:
            self._fail("qos.conservation",
                       "class resolved more frames than arrived",
                       port=port, cls=cls, injected=injected,
                       enqueued=enqueued, tail=tail, red=red)

    def qos_injected(self, wire: Any, port: int, cls: int) -> None:
        self._count("qos.inject")
        self._wire(wire)[3] += 1
        self._qos(wire, port, cls)[0] += 1

    def qos_enqueued(self, wire: Any, port: int, cls: int, depth: int) -> None:
        self._count("qos.enqueue")
        counts = self._qos(wire, port, cls)
        counts[1] += 1
        self._check_qos_class(port, cls, counts, depth)

    def qos_forwarded(self, wire: Any, port: int, cls: int, depth: int) -> None:
        self._count("qos.forward")
        self._wire(wire)[3] -= 1
        counts = self._qos(wire, port, cls)
        counts[2] += 1
        self._check_qos_class(port, cls, counts, depth)

    def qos_dropped(self, wire: Any, port: int, cls: int, kind: str) -> None:
        self._count("qos.drop")
        self._wire(wire)[3] -= 1
        counts = self._qos(wire, port, cls)
        counts[3 if kind == "tail" else 4] += 1
        self._check_qos_class(port, cls, counts,
                              counts[1] - counts[2])

    def qos_pause(self, wire: Any, port: int, cls: int, paused: bool) -> None:
        self._count("qos.pause")
        key = (id(wire), port, cls)
        previous = self._qos_paused.get(key, False)
        if previous == paused:
            self._fail("qos.pause",
                       "pause state did not alternate (double XOFF/XON)",
                       port=port, cls=cls, paused=paused)
        self._qos_paused[key] = paused

    def qos_port_idle(self, wire: Any, port: int, backlog: int) -> None:
        self._count("qos.work_conserving")
        if backlog != 0:
            self._fail("qos.work_conserving",
                       "scheduler went idle against a non-empty backlog",
                       port=port, backlog=backlog)

    # ------------------------------------------------------------------
    # Composed topologies (multi-switch graph wire)
    # ------------------------------------------------------------------
    # A graph wire resolves frames hop by hop; ``topo_transit`` shadows
    # the in-flight window between hops in the wire-level ``queued``
    # slot so the global conservation identity (checked inside
    # ``wire_forwarded``/``wire_dropped``) holds at every hook.
    # Per-link shadows pin that no frame leaves an egress link it never
    # entered, and every resolved route is checked loop-free and within
    # the topology's shortest-path hop bound.
    def topo_route(self, wire: Any, flow: str, src: int, dst: int,
                   path: Any, hop_bound: int) -> None:
        self._count("topo.route")
        self._pin(wire)
        if len(set(path)) != len(path):
            self._fail("topo.route", "forwarding loop: route repeats a switch",
                       flow=flow, src=src, dst=dst, path=tuple(path))
        if len(path) > hop_bound:
            self._fail("topo.route", "route exceeds the shortest-path hop bound",
                       flow=flow, src=src, dst=dst, path=tuple(path),
                       hop_bound=hop_bound)
        key = (id(wire), flow, src, dst)
        previous = self._topo_routes.get(key)
        if previous is not None and previous != tuple(path):
            self._fail("topo.route", "flow tuple re-resolved to a new route",
                       flow=flow, src=src, dst=dst,
                       previous=previous, path=tuple(path))
        self._topo_routes[key] = tuple(path)

    def topo_transit(self, wire: Any, delta: int) -> None:
        self._count("topo.transit")
        counts = self._wire(wire)
        counts[3] += delta
        if counts[3] < 0:
            self._fail("topo.transit",
                       "more frames left the fabric than entered it",
                       queued=counts[3])

    def _topo_link(self, wire: Any, link: str) -> List[int]:
        key = (id(wire), link)
        counts = self._topo_links.get(key)
        if counts is None:
            self._pin(wire)
            counts = [0, 0, 0]
            self._topo_links[key] = counts
        return counts

    def _check_topo_link(self, link: str, counts: List[int]) -> None:
        entered, forwarded, dropped = counts
        if forwarded + dropped > entered:
            self._fail("topo.link",
                       "link resolved more frames than entered it",
                       link=link, entered=entered, forwarded=forwarded,
                       dropped=dropped)

    def topo_link_entered(self, wire: Any, link: str) -> None:
        self._count("topo.link")
        self._topo_link(wire, link)[0] += 1

    def topo_link_forwarded(self, wire: Any, link: str) -> None:
        self._count("topo.link")
        counts = self._topo_link(wire, link)
        counts[1] += 1
        self._check_topo_link(link, counts)

    def topo_link_dropped(self, wire: Any, link: str) -> None:
        self._count("topo.link")
        counts = self._topo_link(wire, link)
        counts[2] += 1
        self._check_topo_link(link, counts)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> Dict[str, int]:
        """Checks exercised per invariant family (for CLI summaries)."""
        return dict(sorted(self.checks.items()))

    def total_checks(self) -> int:
        return sum(self.checks.values())

    def summary(self) -> str:
        families = len(self.checks)
        return (
            f"{self.total_checks()} checks across {families} invariant "
            f"families, {len(self.violations)} violation(s)"
        )


def monitor_or_null(monitor: Optional[NullInvariantMonitor]) -> NullInvariantMonitor:
    """Normalize an optional monitor argument to the null singleton."""
    return NULL_MONITOR if monitor is None else monitor
