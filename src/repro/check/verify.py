"""Attaching monitors to simulators and post-run conservation checks.

Two entry points:

* :func:`attach_monitor` wires one monitor instance into every
  instrumented object a simulator owns — the event kernel, the ordering
  boards, the distributed event queue, the SDRAM model, and (for a
  fabric) the wire plus every endpoint, all sharing one monitor so
  cross-object invariants (ticket conservation on a shared kernel) hold
  globally.
* :func:`verify_conservation` checks the *end-state* identities that
  per-event hooks cannot see: frame/byte conservation through the
  queue → boards → MAC datapath, buffer-space bounds, and the faulted
  accounting identity ``delivered + holes + drops + in_flight ==
  injected``.

Both work on :class:`~repro.nic.throughput.ThroughputSimulator` and
:class:`~repro.fabric.sim.FabricSimulator` (duck-typed on
``.endpoints``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.check.monitor import (
    NULL_MONITOR,
    InvariantMonitor,
    InvariantViolation,
    NullInvariantMonitor,
)


def _is_fabric(simulator: Any) -> bool:
    return hasattr(simulator, "endpoints") and hasattr(simulator, "wire")


def attach_monitor(simulator: Any, monitor: NullInvariantMonitor) -> None:
    """Install ``monitor`` on every instrumented object of ``simulator``.

    Pass :data:`~repro.check.monitor.NULL_MONITOR` to detach.  Safe to
    call before :meth:`start`/:meth:`run`; attaching mid-run is not
    supported (shadow state would disagree with live state).
    """
    if _is_fabric(simulator):
        simulator.sim.monitor = monitor
        simulator.wire.monitor = monitor
        for endpoint in simulator.endpoints:
            _attach_throughput(endpoint, monitor)
        return
    _attach_throughput(simulator, monitor)


def _attach_throughput(simulator: Any, monitor: NullInvariantMonitor) -> None:
    simulator.monitor = monitor
    simulator.sim.monitor = monitor
    simulator.queue.monitor = monitor
    simulator.sdram.monitor = monitor
    for board in (
        simulator.board_tx_mac,
        simulator.board_tx_notify,
        simulator.board_rx,
    ):
        board.monitor = monitor
    rss_host = getattr(simulator, "rss_host", None)
    if rss_host is not None:
        rss_host.monitor = monitor


# ----------------------------------------------------------------------
# Post-run conservation identities
# ----------------------------------------------------------------------
class _Checker:
    def __init__(self, label: str) -> None:
        self.label = label
        self.checked: Dict[str, Any] = {}
        self.failures: List[str] = []

    def check(self, name: str, ok: bool, detail: str) -> None:
        self.checked[name] = bool(ok)
        if not ok:
            self.failures.append(f"{self.label}{name}: {detail}")

    def equal(self, name: str, lhs: Any, rhs: Any, formula: str) -> None:
        self.check(name, lhs == rhs, f"{formula} ({lhs!r} != {rhs!r})")


def _verify_throughput(simulator: Any, checker: _Checker) -> None:
    board_rx = simulator.board_rx
    mac_rx = simulator.mac_rx
    config = simulator.config

    # Receive-side frame conservation.
    checker.equal(
        "rx.commit_accounting",
        board_rx.commit_seq,
        simulator._rx_done_frames + simulator._rx_hole_frames,
        "commit_seq == rx_done + rx_holes",
    )
    checker.equal(
        "rx.seq_conservation",
        mac_rx._next_seq,
        mac_rx.frames_accepted + simulator._rx_dropped,
        "next_seq == accepted + tail_dropped",
    )
    # Accepted frames (holes included — FCS drops happen after the MAC
    # consumed the sequence) not yet committed are in flight.
    in_flight = mac_rx.frames_accepted - board_rx.commit_seq
    checker.check(
        "rx.in_flight",
        in_flight >= 0,
        f"accepted frames behind deliveries (in_flight={in_flight})",
    )
    # Faulted accounting identity (also holds fault-free with holes=0):
    # every consumed sequence number is delivered, a hole, tail-dropped,
    # or still in flight.
    checker.equal(
        "rx.fault_identity",
        mac_rx._next_seq,
        simulator._rx_done_frames
        + simulator._rx_hole_frames
        + simulator._rx_dropped
        + in_flight,
        "injected == delivered + holes + drops + in_flight",
    )

    # Transmit-side conservation.
    checker.equal(
        "tx.outstanding",
        simulator._tx_mac_seq - simulator._tx_done_frames,
        simulator._tx_outstanding_mac,
        "mac_seq - done == outstanding",
    )
    checker.check(
        "tx.outstanding_bound",
        0 <= simulator._tx_outstanding_mac <= 2,
        f"MAC double-buffer bound violated ({simulator._tx_outstanding_mac})",
    )

    # Buffer-byte conservation (claims are refunded exactly once).
    checker.check(
        "tx.buffer_bounds",
        0 <= simulator._tx_space <= config.tx_buffer_bytes,
        f"tx buffer space {simulator._tx_space} outside "
        f"[0, {config.tx_buffer_bytes}]",
    )
    checker.check(
        "rx.buffer_bounds",
        0 <= simulator._rx_space <= config.rx_buffer_bytes,
        f"rx buffer space {simulator._rx_space} outside "
        f"[0, {config.rx_buffer_bytes}]",
    )

    # Event queue claim/complete conservation.
    queue = simulator.queue
    checker.equal(
        "queue.conservation",
        queue.enqueues - queue.dequeues,
        len(queue),
        "enqueues - dequeues == depth",
    )

    # Ordering boards: bitmap population == marked + skipped - committed.
    for board in (
        simulator.board_tx_mac,
        simulator.board_tx_notify,
        simulator.board_rx,
    ):
        outstanding = board.marked + board.skipped - board.committed
        checker.equal(
            f"board.{board.name}.pending",
            board.pending,
            outstanding,
            "pending == marked + skipped - committed",
        )
        checker.check(
            f"board.{board.name}.window",
            0 <= outstanding <= board.ring_size,
            f"outstanding {outstanding} outside ring window",
        )

    # Core scheduling conservation.
    checker.equal(
        "cores.free_list",
        simulator._idle_cores,
        len(simulator._free_core_ids),
        "idle count == free-list length",
    )
    checker.check(
        "cores.bound",
        0 <= simulator._idle_cores <= config.cores,
        f"idle cores {simulator._idle_cores} outside [0, {config.cores}]",
    )

    # SDRAM byte conservation: every transferred byte is useful payload,
    # wasted retry payload, or alignment padding — never negative padding.
    sdram = simulator.sdram
    checker.check(
        "sdram.bytes",
        sdram.transferred_bytes >= sdram.useful_bytes + sdram.wasted_retry_bytes,
        f"transferred {sdram.transferred_bytes} < useful "
        f"{sdram.useful_bytes} + retries {sdram.wasted_retry_bytes}",
    )

    # Multi-queue host rings: per-ring descriptor conservation — every
    # posted descriptor is completed or still held in the ring.
    rss_host = getattr(simulator, "rss_host", None)
    if rss_host is not None:
        for ring in rss_host.rings:
            checker.equal(
                f"rss.ring{ring.index}.rx_conservation",
                ring.rx_posted,
                ring.rx_completed + len(ring.recv_ring),
                "rx posted == completed + in_flight",
            )
            checker.equal(
                f"rss.ring{ring.index}.tx_conservation",
                2 * ring.tx_posted,
                2 * ring.tx_completed + len(ring.send_ring),
                "tx posted BDs == completed + in_flight",
            )


def _verify_fabric(fabric: Any, checker: _Checker) -> None:
    wire = fabric.wire
    checker.check(
        "wire.counters",
        wire.forwarded >= 0 and wire.drops >= 0,
        f"negative wire counters ({wire.forwarded}, {wire.drops})",
    )
    for flow in fabric.flows.values():
        accounted = flow.delivered + flow.lost
        checker.check(
            f"flow.{flow.name}.accounting",
            0 <= accounted <= flow.posted,
            f"delivered {flow.delivered} + lost {flow.lost} vs "
            f"posted {flow.posted}",
        )
    if wire.qos is not None:
        _verify_qos(wire, checker)
    if getattr(wire, "topology", None) is not None:
        _verify_topology(wire, checker)
    for index, endpoint in enumerate(fabric.endpoints):
        sub = _Checker(f"{checker.label}nic{index}.")
        _verify_throughput(endpoint, sub)
        checker.checked.update(
            {f"nic{index}.{k}": v for k, v in sub.checked.items()}
        )
        checker.failures.extend(sub.failures)


def _verify_qos(wire: Any, checker: _Checker) -> None:
    """Per-(port, class) end-state identities of the QoS switch ports.

    ``enqueued == forwarded + still-queued`` (no frame vanishes from a
    class queue), pause/resume events pair up with the live pause flag,
    and a class still paused at end of run must hold more than its XON
    watermark — a paused-below-XON state would mean a missed resume,
    the deadlock the PFC layer must never produce.
    """
    qos = wire.qos
    for port in wire.qos_ports():
        for cls, tc in enumerate(qos.classes):
            label = f"qos.port{port.index}.{tc.name}"
            depth = len(port.queues[cls])
            checker.equal(
                f"{label}.conservation",
                port.enqueued[cls],
                port.forwarded[cls] + depth,
                "enqueued == forwarded + queued",
            )
            checker.equal(
                f"{label}.pause_pairing",
                port.pause_events[cls] - port.resume_events[cls],
                1 if port.paused[cls] else 0,
                "pauses - resumes == currently-paused",
            )
            if tc.pause_xoff_frames:
                checker.check(
                    f"{label}.no_pause_deadlock",
                    not port.paused[cls] or depth > tc.pause_xon_frames,
                    f"paused with depth {depth} <= XON "
                    f"{tc.pause_xon_frames} (missed resume)",
                )


def _verify_topology(wire: Any, checker: _Checker) -> None:
    """Per-link end-state identities of a composed topology.

    Every frame that entered a link's output port was forwarded on,
    dropped, or (QoS ports only) is still parked in a class queue.
    Analytic tail-drop ports resolve each frame at its hop instant, so
    they carry no residual state at all.
    """
    for key in sorted(wire.link_counts):
        entered, forwarded, dropped = wire.link_counts[key]
        if wire.qos is not None:
            backlog = wire._topo_qos_port(key).backlog()
        else:
            backlog = 0
        checker.equal(
            f"topo.link.{key}.conservation",
            entered,
            forwarded + dropped + backlog,
            "entered == forwarded + dropped + queued",
        )


def verify_conservation(
    simulator: Any,
    monitor: Optional[InvariantMonitor] = None,
    raise_on_failure: bool = True,
) -> Dict[str, Any]:
    """Check end-state conservation identities of a finished run.

    Returns the dict of identities checked (name → ok).  With
    ``raise_on_failure`` (default) an :exc:`InvariantViolation` listing
    every broken identity is raised instead of returning failures.

    When the run's armed ``monitor`` is passed, kernel event-ticket
    conservation (scheduled == fired + discarded + live) is checked too.
    """
    checker = _Checker("")
    if _is_fabric(simulator):
        _verify_fabric(simulator, checker)
    else:
        _verify_throughput(simulator, checker)

    if monitor is not None and monitor.enabled:
        before = len(monitor.violations)
        strict, monitor.strict = monitor.strict, False
        try:
            monitor.check_ticket_conservation()
        finally:
            monitor.strict = strict
        new = monitor.violations[before:]
        checker.check(
            "kernel.ticket_conservation",
            not new,
            "; ".join(str(v) for v in new),
        )

    if checker.failures and raise_on_failure:
        raise InvariantViolation(
            "conservation",
            f"{len(checker.failures)} identity(ies) broken: "
            + " | ".join(checker.failures),
        )
    return checker.checked
