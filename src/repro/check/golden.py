"""Golden-trace corpus: pinned digests of canonical seeded runs.

``tests/golden/golden.json`` records a SHA-256 digest of the full
result dictionary (sorted-key canonical JSON of ``to_dict()``) for a
small set of canonical runs covering every simulator tier: throughput
(RMW and software ordering), fault injection, and the multi-NIC fabric
(direct and switched).  Because the simulators are deterministic, any
behavioural change — intended or not — flips at least one digest, which
makes unintentional drift impossible to miss and intentional drift an
explicit, reviewable regeneration:

.. code-block:: console

    $ python -m repro.check.golden --update   # or: repro check --update-golden

The corpus is the same mechanism the PR-level byte-identity smokes
used, promoted into one maintained place.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Callable, Dict

#: Windows long enough to saturate the pipeline, short enough for CI.
WARMUP_S = 0.1e-3
MEASURE_S = 0.3e-3

DEFAULT_CORPUS_PATH = os.path.join("tests", "golden", "golden.json")


def golden_digest(result) -> str:
    """Canonical digest of a simulation result (order-independent)."""
    payload = json.dumps(
        result.to_dict(), sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Canonical runs (one per simulator tier)
# ----------------------------------------------------------------------
def _config():
    from repro.nic.config import NicConfig
    from repro.units import mhz

    return NicConfig(cores=2, core_frequency_hz=mhz(133))


def _run_throughput(fast: bool = False):
    from repro.nic.throughput import ThroughputSimulator

    return ThroughputSimulator(_config(), 1472, fast=fast).run(
        WARMUP_S, MEASURE_S
    )


def _run_throughput_software(fast: bool = False):
    from repro.firmware.ordering import OrderingMode
    from repro.nic.throughput import ThroughputSimulator

    config = dataclasses.replace(
        _config(), ordering_mode=OrderingMode.SOFTWARE
    )
    return ThroughputSimulator(config, 1472, fast=fast).run(
        WARMUP_S, MEASURE_S
    )


def _run_faulted(fast: bool = False):
    from repro.faults import FaultPlan
    from repro.nic.throughput import ThroughputSimulator

    plan = FaultPlan(
        seed=7, rx_fcs_rate=0.01, sdram_error_rate=0.002, pci_stall_rate=0.001
    )
    return ThroughputSimulator(
        _config(), 1472, fault_plan=plan, fast=fast
    ).run(WARMUP_S, MEASURE_S)


def _run_fabric(fast: bool = False):
    from repro.fabric import FabricSimulator, FabricSpec

    # estimator="exact": the corpus digests full result dicts, and only
    # exact nearest-rank percentiles are byte-stable across estimator
    # tuning (docs/observability.md, "Streaming quantiles").
    return FabricSimulator(
        _config(), FabricSpec.rpc_pair(seed=11), estimator="exact", fast=fast
    ).run(WARMUP_S, MEASURE_S)


def _run_fabric_switched(fast: bool = False):
    from repro.fabric import FabricSimulator, FabricSpec

    spec = dataclasses.replace(
        FabricSpec.rpc_pair(seed=3), switch=True, port_queue_frames=4
    )
    return FabricSimulator(_config(), spec, estimator="exact", fast=fast).run(
        WARMUP_S, MEASURE_S
    )


def _run_fabric_qos(fast: bool = False):
    from repro.fabric import FabricSimulator, FabricSpec, StreamFlowSpec
    from repro.nic.config import NicConfig
    from repro.qos import QosSpec
    from repro.units import mhz

    # Mixed-criticality incast: a guaranteed lane and an overloading
    # best-effort lane converge on NIC 2's switch port (4-core NICs so
    # the sources can actually congest the 10G output port).  Exercises
    # classification, the DRR scheduler, RED drops, and PFC pause.
    qos = dataclasses.replace(
        QosSpec.mixed_criticality(scheduler="drr", pause=True), seed=13
    )
    spec = FabricSpec(
        nics=3,
        switch=True,
        seed=13,
        qos=qos,
        stream_flows=(
            StreamFlowSpec(src=0, dst=2, offered_fraction=0.25,
                           name="gold", qos_class="guaranteed"),
            StreamFlowSpec(src=1, dst=2, offered_fraction=1.0,
                           name="bulk", qos_class="best-effort"),
        ),
    )
    config = NicConfig(cores=4, core_frequency_hz=mhz(133))
    return FabricSimulator(config, spec, estimator="exact", fast=fast).run(
        WARMUP_S, MEASURE_S
    )


def _run_fabric_topology(fast: bool = False):
    from repro.fabric import (
        FabricSimulator,
        FabricSpec,
        StreamFlowSpec,
        TopologySpec,
    )

    # Oversubscribed leaf-spine incast: two racks share one spine
    # (2:1 oversubscription) and three sources converge on host 3, so
    # the run exercises multi-hop store-and-forward, ECMP route draws,
    # per-link tail-drop, and the sharded flow table — all pinned to a
    # byte-stable digest (the topology report rides the result dict).
    topo = TopologySpec.leaf_spine(
        racks=2, hosts_per_rack=2, spines=1, ecmp_seed=17
    )
    spec = FabricSpec(
        nics=4,
        switch=True,
        seed=17,
        topology=topo,
        port_queue_frames=8,
        stream_flows=(
            StreamFlowSpec(src=0, dst=3, offered_fraction=0.5, name="in0"),
            StreamFlowSpec(src=1, dst=3, offered_fraction=0.5, name="in1"),
            StreamFlowSpec(src=2, dst=3, offered_fraction=0.4, name="in2"),
        ),
    )
    return FabricSimulator(_config(), spec, estimator="exact", fast=fast).run(
        WARMUP_S, MEASURE_S
    )


def golden_specs() -> Dict[str, Callable]:
    """Name → runner for every canonical run in the corpus.

    Every runner accepts ``fast=True`` to execute the same spec on the
    batched kernel path; the corpus pins one digest per run because the
    fast path is required to be byte-identical (the ``--fast`` checks
    in CI and ``tests/test_batch_fast_path.py`` enforce it).
    """
    return {
        "throughput-rmw": _run_throughput,
        "throughput-software": _run_throughput_software,
        "throughput-faulted": _run_faulted,
        "fabric-rpc": _run_fabric,
        "fabric-rpc-switched": _run_fabric_switched,
        "fabric-qos-switched": _run_fabric_qos,
        "fabric-topology-incast": _run_fabric_topology,
    }


# ----------------------------------------------------------------------
# Corpus I/O
# ----------------------------------------------------------------------
def compute_digests(fast: bool = False) -> Dict[str, str]:
    return {
        name: golden_digest(run(fast=fast))
        for name, run in golden_specs().items()
    }


def load_corpus(path: str = DEFAULT_CORPUS_PATH) -> Dict[str, str]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return dict(payload["digests"])


def write_corpus(path: str = DEFAULT_CORPUS_PATH) -> Dict[str, str]:
    digests = compute_digests()
    payload = {
        "comment": (
            "Pinned digests of canonical seeded runs; regenerate with "
            "`python -m repro.check.golden --update` after an intended "
            "behavioural change (see docs/validation.md)."
        ),
        "windows": {"warmup_s": WARMUP_S, "measure_s": MEASURE_S},
        "digests": digests,
    }
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return digests


def compare_corpus(
    path: str = DEFAULT_CORPUS_PATH, fast: bool = False
) -> Dict[str, Dict[str, str]]:
    """Re-run every canonical spec and diff against the pinned corpus.

    Returns ``{name: {"pinned": ..., "actual": ...}}`` for mismatches
    (missing entries count as mismatches with pinned ``"<absent>"``).
    With ``fast=True`` the runs execute on the batched kernel path and
    are diffed against the *same* pinned digests — the fast path's
    byte-identity contract makes one corpus serve both modes.
    """
    pinned = load_corpus(path)
    actual = compute_digests(fast=fast)
    mismatches: Dict[str, Dict[str, str]] = {}
    for name, digest in actual.items():
        expected = pinned.get(name, "<absent>")
        if digest != expected:
            mismatches[name] = {"pinned": expected, "actual": digest}
    return mismatches


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Check or regenerate the golden-trace corpus."
    )
    parser.add_argument(
        "--update", action="store_true",
        help="regenerate tests/golden/golden.json from the current code",
    )
    parser.add_argument("--path", default=DEFAULT_CORPUS_PATH)
    parser.add_argument(
        "--fast", action="store_true",
        help="run the canonical specs on the batched kernel fast path "
             "(diffed against the same pinned digests)",
    )
    args = parser.parse_args(argv)
    if args.update:
        digests = write_corpus(args.path)
        for name, digest in sorted(digests.items()):
            print(f"  {name}: {digest[:16]}…")
        print(f"wrote {len(digests)} golden digests to {args.path}")
        return 0
    mismatches = compare_corpus(args.path, fast=args.fast)
    if not mismatches:
        mode = "fast path" if args.fast else "reference path"
        print(f"golden corpus matches ({len(load_corpus(args.path))} runs, "
              f"{mode})")
        return 0
    for name, pair in sorted(mismatches.items()):
        print(f"MISMATCH {name}: pinned {pair['pinned'][:16]}… "
              f"actual {pair['actual'][:16]}…")
    print("regenerate with `python -m repro.check.golden --update` if the "
          "change is intended")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
