"""Frozen, content-hashable QoS configuration.

A :class:`QosSpec` declares the traffic classes a switched fabric
serves — DSCP-style tags carried on every
:class:`~repro.fabric.flows.FabricFrame`, per-class queue capacities,
the per-port scheduler that drains them, optional RED AQM thresholds,
and optional PFC-style pause/resume watermarks.  Like
:class:`~repro.fabric.spec.FabricSpec` and
:class:`~repro.faults.FaultPlan`, it is built from primitives only, so
it canonicalizes through :func:`repro.exp.spec.describe` and
content-hashes into experiment cache keys; a fabric with ``qos=None``
hashes (and simulates) exactly as it did before this layer existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.qos.red import RedSpec

#: Base DRR quantum: one max-size wire frame (1538 B of link occupancy:
#: 1518 B frame + preamble/SFD + IFG).  A class's per-round deficit
#: grant is ``weight * DRR_QUANTUM_BYTES`` unless ``quantum_bytes``
#: overrides it; a quantum of at least one max frame guarantees every
#: backlogged class progresses every round (O(1) DRR condition).
DRR_QUANTUM_BYTES = 1538

#: Scheduler disciplines `make_scheduler` knows how to build.
SCHEDULER_NAMES = ("strict", "drr", "wrr")


@dataclass(frozen=True)
class TrafficClassSpec:
    """One traffic class: tag, queue, scheduling share, AQM, pause.

    ``priority`` orders classes under the strict-priority scheduler
    (lower number = served first).  ``weight`` is the per-round share
    under WRR (frames per visit) and scales the DRR quantum
    (``weight * DRR_QUANTUM_BYTES`` bytes per round, unless
    ``quantum_bytes`` sets it explicitly).  ``pause_xoff_frames`` > 0
    arms PFC-style backpressure: when the class queue reaches the XOFF
    watermark the switch pauses the pacers of every stream flow of this
    class targeting the congested port, resuming once the queue drains
    to ``pause_xon_frames``.  ``p999_bound_us`` is the latency budget a
    guaranteed class is provisioned for (0 = best effort, no bound);
    the ``repro qos`` ablation and the isolation bench assert it.
    """

    name: str
    dscp: int = 0
    queue_frames: int = 64
    priority: int = 0
    weight: int = 1
    quantum_bytes: int = 0
    red: Optional[RedSpec] = None
    pause_xoff_frames: int = 0
    pause_xon_frames: int = 0
    p999_bound_us: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("traffic class needs a non-empty name")
        if not 0 <= self.dscp <= 63:
            raise ValueError(
                f"class {self.name!r} dscp {self.dscp} outside [0, 63]"
            )
        if self.queue_frames < 1:
            raise ValueError(
                f"class {self.name!r} queue must hold at least one frame"
            )
        if self.priority < 0:
            raise ValueError(f"class {self.name!r} priority must be >= 0")
        if self.weight < 1:
            raise ValueError(f"class {self.name!r} weight must be >= 1")
        if self.quantum_bytes < 0:
            raise ValueError(
                f"class {self.name!r} quantum_bytes must be non-negative"
            )
        if self.red is not None and self.red.max_frames > self.queue_frames:
            raise ValueError(
                f"class {self.name!r} RED max threshold "
                f"{self.red.max_frames} exceeds queue depth "
                f"{self.queue_frames}"
            )
        if self.pause_xoff_frames < 0 or self.pause_xon_frames < 0:
            raise ValueError(
                f"class {self.name!r} pause watermarks must be non-negative"
            )
        if self.pause_xoff_frames:
            if not self.pause_xon_frames < self.pause_xoff_frames:
                raise ValueError(
                    f"class {self.name!r} needs XON {self.pause_xon_frames} "
                    f"< XOFF {self.pause_xoff_frames}"
                )
            if self.pause_xoff_frames > self.queue_frames:
                raise ValueError(
                    f"class {self.name!r} XOFF {self.pause_xoff_frames} "
                    f"exceeds queue depth {self.queue_frames}"
                )
        if self.p999_bound_us < 0.0:
            raise ValueError(
                f"class {self.name!r} p999_bound_us must be non-negative"
            )

    @property
    def drr_quantum_bytes(self) -> int:
        """Effective DRR per-round grant."""
        return self.quantum_bytes or self.weight * DRR_QUANTUM_BYTES


@dataclass(frozen=True)
class QosSpec:
    """The fabric's queue-management configuration.

    ``scheduler`` picks the per-port drain discipline (one independent
    scheduler instance per output port): ``"strict"`` priority,
    ``"drr"`` deficit round robin, or ``"wrr"`` weighted round robin —
    see :mod:`repro.qos.sched`.  ``seed`` keys the RED drop decisions
    (the :meth:`~repro.faults.FaultPlan.uniform` blake2b pattern, so
    drops are reproducible and interleaving-independent).
    ``default_class`` names the class untagged flows map to (default:
    the first declared class).
    """

    classes: Tuple[TrafficClassSpec, ...] = ()
    scheduler: str = "drr"
    seed: int = 0
    default_class: str = ""

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("qos needs at least one traffic class")
        names = [tc.name for tc in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"traffic class names must be unique, got {names}")
        tags = [tc.dscp for tc in self.classes]
        if len(set(tags)) != len(tags):
            raise ValueError(f"traffic class dscp tags must be unique, got {tags}")
        if self.scheduler not in SCHEDULER_NAMES:
            raise ValueError(
                f"scheduler must be one of {SCHEDULER_NAMES}, "
                f"got {self.scheduler!r}"
            )
        if self.default_class and self.default_class not in names:
            raise ValueError(
                f"default_class {self.default_class!r} is not a declared "
                f"class (have {names})"
            )

    # ------------------------------------------------------------------
    def class_names(self) -> Tuple[str, ...]:
        return tuple(tc.name for tc in self.classes)

    def index_of(self, name: str) -> int:
        """Class index for a (possibly empty ⇒ default) class name."""
        resolved = self.resolve(name)
        for index, tc in enumerate(self.classes):
            if tc.name == resolved:
                return index
        raise ValueError(
            f"unknown traffic class {name!r} (have {self.class_names()})"
        )

    def resolve(self, name: str) -> str:
        """Map an (optional) flow class assignment to a class name."""
        if name:
            return name
        return self.default_class or self.classes[0].name

    # ------------------------------------------------------------------
    @staticmethod
    def mixed_criticality(
        scheduler: str = "strict",
        guaranteed_p999_bound_us: float = 150.0,
        guaranteed_queue_frames: int = 32,
        best_effort_queue_frames: int = 64,
        red: bool = True,
        pause: bool = False,
        seed: int = 0,
    ) -> "QosSpec":
        """The canonical two-lane ablation config (Liang et al. lanes).

        A ``guaranteed`` class (DSCP 46, expedited forwarding) with a
        shallow queue and a provisioned p999 bound, plus a
        ``best-effort`` class (DSCP 0) with a deep queue, optional RED,
        and optional PFC pause watermarks.  Under strict priority (the
        default) or a 4:1 DRR/WRR share, overloading best-effort must
        not move the guaranteed tail — the property ``repro qos`` and
        ``benchmarks/bench_qos_isolation.py`` measure.
        """
        best_effort_red = (
            RedSpec(
                min_frames=best_effort_queue_frames // 4,
                max_frames=(best_effort_queue_frames * 3) // 4,
                max_drop_probability=0.2,
            )
            if red
            else None
        )
        xoff = (best_effort_queue_frames * 7) // 8 if pause else 0
        xon = best_effort_queue_frames // 4 if pause else 0
        return QosSpec(
            classes=(
                TrafficClassSpec(
                    name="guaranteed",
                    dscp=46,
                    queue_frames=guaranteed_queue_frames,
                    priority=0,
                    weight=4,
                    p999_bound_us=guaranteed_p999_bound_us,
                ),
                TrafficClassSpec(
                    name="best-effort",
                    dscp=0,
                    queue_frames=best_effort_queue_frames,
                    priority=1,
                    weight=1,
                    red=best_effort_red,
                    pause_xoff_frames=xoff,
                    pause_xon_frames=xon,
                ),
            ),
            scheduler=scheduler,
            seed=seed,
        )


__all__ = [
    "DRR_QUANTUM_BYTES",
    "QosSpec",
    "SCHEDULER_NAMES",
    "TrafficClassSpec",
]
