"""Live per-class QoS accounting and pause dispatch for a fabric run.

One :class:`QosRuntime` rides inside a
:class:`~repro.fabric.sim.FabricSimulator` when its spec carries a
:class:`~repro.qos.spec.QosSpec`.  It resolves every flow's class
assignment into the (class name, DSCP) tag the flow stamps on posted
frames, keeps per-class delivery/latency statistics (streaming
quantile sketches registered as ``qos.<class>.oneway_us``, or exact
sample lists in the golden-corpus estimator mode), and routes the
switch's PFC-style XOFF/XON notifications to the stream pacers of the
paused class targeting the congested port.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fabric.flows import (
    LATENCY_SIGNIFICANT_DIGITS,
    FabricFrame,
    LatencySummary,
    StreamFlowRuntime,
)


class QosRuntime:
    """Per-class statistics + pause routing for one fabric run."""

    def __init__(self, fabric) -> None:
        qos = fabric.spec.qos
        assert qos is not None
        self.fabric = fabric
        self.qos = qos
        self.streaming = fabric.estimator == "streaming"
        count = len(qos.classes)
        self._index = {tc.name: index for index, tc in enumerate(qos.classes)}
        self.delivered = [0] * count
        self.delivered_payload_bytes = [0] * count
        self.oneway_samples_us: List[List[float]] = [[] for _ in range(count)]
        self.oneway_streams = [
            fabric.stats.streaming_histogram(
                f"qos.{tc.name}.oneway_us", LATENCY_SIGNIFICANT_DIGITS
            )
            if self.streaming
            else None
            for tc in qos.classes
        ]
        # (port key, class index) -> stream pacers PFC pause can stop.
        # The legacy single switch keys ports by destination endpoint;
        # a composed topology keys them by link name, and a flow must
        # react to XOFF from *any* link on its (deterministic, ECMP-
        # resolved) route — congestion at a spine uplink pauses the
        # sender just like congestion at the access link.
        self._pacers: Dict[Tuple[object, int], List[StreamFlowRuntime]] = {}
        for runtime in fabric.flows.values():
            class_name = qos.resolve(runtime.spec.qos_class)
            cls = self._index[class_name]
            runtime._qos_tag = (class_name, qos.classes[cls].dscp)
            if isinstance(runtime, StreamFlowRuntime):
                if fabric.spec.topology is not None:
                    keys = fabric.wire.route_ports(
                        runtime.name, runtime.spec.src, runtime.spec.dst
                    )
                else:
                    keys = (runtime.spec.dst,)
                for key in keys:
                    self._pacers.setdefault((key, cls), []).append(runtime)

    # -- fabric callbacks -----------------------------------------------
    def on_delivered(self, frame: FabricFrame, now_ps: int) -> None:
        cls = self._index[frame.qos_class]
        self.delivered[cls] += 1
        self.delivered_payload_bytes[cls] += frame.udp_payload_bytes
        oneway_us = (now_ps - frame.created_ps) / 1e6
        if self.streaming:
            self.oneway_streams[cls].record(oneway_us)
        else:
            self.oneway_samples_us[cls].append(oneway_us)

    def pause(self, port: int, cls: int, now_ps: int) -> None:
        for runtime in self._pacers.get((port, cls), ()):
            runtime.qos_pause(now_ps)

    def resume(self, port: int, cls: int, now_ps: int) -> None:
        for runtime in self._pacers.get((port, cls), ()):
            runtime.qos_resume(now_ps)

    # -- measurement window ---------------------------------------------
    def window_snapshot(self) -> Dict[str, object]:
        return {
            "delivered": list(self.delivered),
            "delivered_payload_bytes": list(self.delivered_payload_bytes),
            "oneway_index": [len(s) for s in self.oneway_samples_us],
            "wire": self.fabric.wire.qos_window_snapshot(),
        }

    def _oneway_summary(self, cls: int, since_index: int) -> LatencySummary:
        if self.streaming:
            return LatencySummary.from_streaming(self.oneway_streams[cls])
        return LatencySummary.from_samples_us(
            self.oneway_samples_us[cls][since_index:]
        )

    def build_result(
        self, snapshot: Dict[str, object], measure_ps: int
    ) -> Dict[str, object]:
        """Measured-window per-class report (``FabricResult.qos``)."""
        measure_seconds = measure_ps / 1e12
        wire_now = self.fabric.wire.qos_window_snapshot()
        wire_then = snapshot["wire"]
        classes: Dict[str, Dict[str, object]] = {}
        for cls, tc in enumerate(self.qos.classes):
            payload = (
                self.delivered_payload_bytes[cls]
                - snapshot["delivered_payload_bytes"][cls]
            )
            summary = self._oneway_summary(
                cls, snapshot["oneway_index"][cls]
            )
            entry: Dict[str, object] = {
                "dscp": tc.dscp,
                "delivered": self.delivered[cls] - snapshot["delivered"][cls],
                "delivered_payload_bytes": payload,
                "goodput_gbps": payload * 8 / measure_seconds / 1e9,
                "oneway": summary.to_dict(),
            }
            for key in ("enqueued", "forwarded", "tail_drops", "red_drops",
                        "pause_events", "resume_events"):
                entry[key] = wire_now[key][cls] - wire_then[key][cls]
            if tc.p999_bound_us:
                entry["p999_bound_us"] = tc.p999_bound_us
            classes[tc.name] = entry
        return {"scheduler": self.qos.scheduler, "classes": classes}


__all__ = ["QosRuntime"]
