"""Pluggable per-port schedulers draining per-class queues.

One :class:`Scheduler` instance serves one switch output port (ports
do not share round/deficit state).  The port's service loop calls
:meth:`Scheduler.select` each time the line goes free; the scheduler
returns the index of the class whose head frame the port must
serialize next (the caller pops it), or ``None`` only when every queue
is empty.  That contract *is* work conservation — the invariant
monitor's ``qos.work_conserving`` check fails any scheduler that
returns ``None`` against a non-empty backlog.

Queue entries expose the frame's wire footprint via a ``frame_bytes``
attribute (DRR is byte-fair, so it needs sizes; strict priority and
WRR ignore them).  All three disciplines are pure integer state
machines: deterministic, interleaving-independent, and byte-identical
between the reference and ``--fast`` kernel paths.
"""

from __future__ import annotations

from typing import Deque, List, Optional, Sequence

from repro.qos.spec import SCHEDULER_NAMES, QosSpec

#: Re-exported canonical discipline names (see ``QosSpec.scheduler``).
SCHEDULERS = SCHEDULER_NAMES


class Scheduler:
    """Interface: pick the class whose head frame is served next."""

    name = "scheduler"

    def select(self, queues: Sequence[Deque]) -> Optional[int]:
        """Index of the class to dequeue from, or ``None`` iff all
        queues are empty.  The caller pops exactly the head of the
        returned queue before the next ``select`` call."""
        raise NotImplementedError


class StrictPriorityScheduler(Scheduler):
    """Always serve the most urgent backlogged class.

    Urgency is ``(priority, declaration index)`` ascending, so equal
    priorities break ties deterministically by declaration order.
    Starves lower classes under saturation by design — the guarantee a
    latency-critical lane wants, and the hazard the property tests pin.
    """

    name = "strict"

    def __init__(self, priorities: Sequence[int]) -> None:
        # Class indices pre-sorted by urgency: select is one scan.
        self._order: List[int] = sorted(
            range(len(priorities)), key=lambda i: (priorities[i], i)
        )

    def select(self, queues: Sequence[Deque]) -> Optional[int]:
        for index in self._order:
            if queues[index]:
                return index
        return None


class DrrScheduler(Scheduler):
    """Deficit round robin (Shreedhar & Varghese): byte-fair shares.

    Each round a backlogged class's deficit grows by its quantum; the
    class serves head frames while the head fits the deficit, then the
    pointer moves on.  An emptied class forfeits its deficit (classic
    DRR), so idle classes cannot bank credit.  Fairness bound: over any
    interval where two classes stay backlogged their served bytes per
    quantum differ by less than one max frame (``deficits`` and
    ``rounds`` are exposed so the property tests assert exactly that).
    """

    name = "drr"

    def __init__(self, quanta: Sequence[int]) -> None:
        if any(q < 1 for q in quanta):
            raise ValueError("DRR quanta must be >= 1 byte")
        self.quanta: List[int] = list(quanta)
        self.deficits: List[int] = [0] * len(quanta)
        self.rounds: List[int] = [0] * len(quanta)
        self._pointer = 0
        # True when the pointer just moved onto a class (grant point).
        self._entering = True

    def select(self, queues: Sequence[Deque]) -> Optional[int]:
        backlog = [index for index, queue in enumerate(queues) if queue]
        if not backlog:
            # Idle classes forfeit their deficit between busy periods.
            for index in range(len(self.deficits)):
                self.deficits[index] = 0
            self._entering = True
            return None
        count = len(queues)
        while True:
            index = self._pointer
            queue = queues[index]
            if not queue:
                self.deficits[index] = 0
                self._pointer = (index + 1) % count
                self._entering = True
                continue
            if self._entering:
                self.deficits[index] += self.quanta[index]
                self.rounds[index] += 1
                self._entering = False
            head_bytes = queue[0].frame_bytes
            if head_bytes <= self.deficits[index]:
                self.deficits[index] -= head_bytes
                return index
            self._pointer = (index + 1) % count
            self._entering = True
            # Termination: every full lap adds one quantum (>= 1 byte)
            # to each backlogged class, so some head eventually fits.


class WrrScheduler(Scheduler):
    """Weighted round robin: ``weight`` frames per class per round.

    Frame-fair rather than byte-fair — cheaper state than DRR, the
    classic network-processor discipline when frames are near-uniform
    (Papaefstathiou et al.).
    """

    name = "wrr"

    def __init__(self, weights: Sequence[int]) -> None:
        if any(w < 1 for w in weights):
            raise ValueError("WRR weights must be >= 1 frame")
        self.weights: List[int] = list(weights)
        self.credits: List[int] = [0] * len(weights)
        self._pointer = 0
        self._entering = True

    def select(self, queues: Sequence[Deque]) -> Optional[int]:
        if not any(queues):
            for index in range(len(self.credits)):
                self.credits[index] = 0
            self._entering = True
            return None
        count = len(queues)
        while True:
            index = self._pointer
            queue = queues[index]
            if not queue:
                self.credits[index] = 0
                self._pointer = (index + 1) % count
                self._entering = True
                continue
            if self._entering:
                self.credits[index] = self.weights[index]
                self._entering = False
            if self.credits[index] > 0:
                self.credits[index] -= 1
                return index
            self._pointer = (index + 1) % count
            self._entering = True


def make_scheduler(qos: QosSpec) -> Scheduler:
    """Build one port's scheduler instance from the spec."""
    if qos.scheduler == "strict":
        return StrictPriorityScheduler([tc.priority for tc in qos.classes])
    if qos.scheduler == "drr":
        return DrrScheduler([tc.drr_quantum_bytes for tc in qos.classes])
    if qos.scheduler == "wrr":
        return WrrScheduler([tc.weight for tc in qos.classes])
    raise ValueError(f"unknown scheduler {qos.scheduler!r}")


__all__ = [
    "SCHEDULERS",
    "DrrScheduler",
    "Scheduler",
    "StrictPriorityScheduler",
    "WrrScheduler",
    "make_scheduler",
]
