"""Per-class queue management for the fabric switch (ROADMAP item 4).

Grounded in "Queue Management in Network Processors" (Papaefstathiou
et al., PAPERS.md) and the mixed-criticality guaranteed-vs-best-effort
lanes of Liang et al.'s gigabit controller: the fabric switch grows
from one finite FIFO per output port into per-traffic-class queues
drained by a pluggable scheduler, with RED active queue management and
PFC-style per-class pause/backpressure to the transmitting NIC pacers.

Everything is driven by a frozen, content-hashable :class:`QosSpec`
riding on :class:`~repro.fabric.spec.FabricSpec` the same way
``fault_plan``/``rss`` ride on :class:`~repro.exp.spec.RunSpec`:
absent config keeps every legacy cache key and golden digest
byte-identical.  See ``docs/qos.md``.
"""

from repro.qos.red import RedSpec, red_decide, red_drop_probability
from repro.qos.sched import (
    SCHEDULERS,
    DrrScheduler,
    Scheduler,
    StrictPriorityScheduler,
    WrrScheduler,
    make_scheduler,
)
from repro.qos.spec import DRR_QUANTUM_BYTES, QosSpec, TrafficClassSpec

__all__ = [
    "DRR_QUANTUM_BYTES",
    "DrrScheduler",
    "QosSpec",
    "RedSpec",
    "SCHEDULERS",
    "Scheduler",
    "StrictPriorityScheduler",
    "TrafficClassSpec",
    "WrrScheduler",
    "make_scheduler",
    "red_decide",
    "red_drop_probability",
]
