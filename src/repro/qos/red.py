"""RED active queue management with keyed, replayable drop decisions.

The drop *probability* is the classic RED ramp over queue occupancy:
zero below ``min_frames``, linear up to ``max_drop_probability`` at
``max_frames``, and a forced drop at or above ``max_frames`` (the
queue's tail-drop guard then never fires first).  Occupancy is the
instantaneous per-class queue depth — the deterministic simulator has
no inter-packet arrival jitter for an EWMA to smooth, so the
instantaneous depth *is* the averaged depth of the original algorithm
(documented simplification; see docs/qos.md).

The drop *decision* reuses the keyed fault-decision pattern of
:meth:`repro.faults.FaultPlan.uniform` byte-for-byte: a blake2b draw
over ``(seed, axis, index)`` where the axis names the port and class
and the index counts that stream's decisions.  Two runs with the same
spec make identical drop decisions regardless of event interleaving —
the property that makes seeded QoS runs byte-identical and lets the
``--fast`` path share the reference path's drops exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_TWO_64 = float(2**64)


@dataclass(frozen=True)
class RedSpec:
    """RED thresholds for one traffic class (frames, not bytes)."""

    min_frames: int = 8
    max_frames: int = 24
    max_drop_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.min_frames < 0:
            raise ValueError("RED min threshold must be non-negative")
        if self.max_frames <= self.min_frames:
            raise ValueError(
                f"RED needs min < max thresholds, got "
                f"[{self.min_frames}, {self.max_frames}]"
            )
        if not 0.0 < self.max_drop_probability <= 1.0:
            raise ValueError(
                f"RED max drop probability must be in (0, 1], got "
                f"{self.max_drop_probability}"
            )


def red_drop_probability(occupancy: int, red: RedSpec) -> float:
    """Drop probability at an instantaneous queue depth.

    Monotone non-decreasing in ``occupancy`` (the hypothesis property
    test pins this): 0 below ``min_frames``, the linear ramp between
    the thresholds, 1.0 at or beyond ``max_frames``.
    """
    if occupancy < red.min_frames:
        return 0.0
    if occupancy >= red.max_frames:
        return 1.0
    span = red.max_frames - red.min_frames
    return red.max_drop_probability * (occupancy - red.min_frames) / span


def keyed_uniform(seed: int, axis: str, index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one decision.

    Identical recipe to :meth:`repro.faults.FaultPlan.uniform`: keyed
    on ``(seed, axis, index)`` so every decision stream is an
    independent, reproducible sequence regardless of simulator event
    interleaving.
    """
    digest = hashlib.blake2b(
        f"{seed}:{axis}:{index}".encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _TWO_64


def red_decide(
    seed: int, port: int, class_name: str, index: int, probability: float
) -> bool:
    """Does the ``index``-th RED opportunity on (port, class) drop?"""
    if probability <= 0.0:
        return False
    if probability >= 1.0:
        return True
    return keyed_uniform(seed, f"red:{port}:{class_name}", index) < probability


__all__ = ["RedSpec", "keyed_uniform", "red_decide", "red_drop_probability"]
