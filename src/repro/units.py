"""Unit helpers shared across the simulator.

All simulator-internal time is kept in *picoseconds* (integers) so that
multiple clock domains (166/200 MHz cores, 500 MHz SDRAM, the 10 Gb/s
Ethernet bit clock, the PCI clock) can interleave without floating-point
drift.  Frequencies are expressed in Hz and bandwidths in bits per second
unless a name says otherwise.
"""

from __future__ import annotations

PICOSECONDS_PER_SECOND = 1_000_000_000_000

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024


def mhz(value: float) -> float:
    """Return a frequency given in MHz as Hz."""
    return value * MEGA


def ghz(value: float) -> float:
    """Return a frequency given in GHz as Hz."""
    return value * GIGA


def gbps(value: float) -> float:
    """Return a bandwidth given in Gb/s as bits per second."""
    return value * GIGA


def mbps(value: float) -> float:
    """Return a bandwidth given in Mb/s as bits per second."""
    return value * MEGA


def to_gbps(bits_per_second: float) -> float:
    """Express a bits-per-second figure in Gb/s."""
    return bits_per_second / GIGA


def cycle_time_ps(frequency_hz: float) -> int:
    """Length of one clock cycle at ``frequency_hz``, in integer picoseconds.

    Rounded to the nearest picosecond; at the frequencies used here
    (tens of MHz to a few GHz) the rounding error per cycle is < 0.1%.
    """
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return max(1, round(PICOSECONDS_PER_SECOND / frequency_hz))


def seconds_to_ps(seconds: float) -> int:
    """Convert seconds to integer picoseconds."""
    return round(seconds * PICOSECONDS_PER_SECOND)


def ps_to_seconds(picoseconds: int) -> float:
    """Convert integer picoseconds to seconds."""
    return picoseconds / PICOSECONDS_PER_SECOND


def bits_to_bytes(bits: int) -> int:
    """Convert a bit count to bytes, requiring byte alignment."""
    if bits % 8:
        raise ValueError(f"bit count {bits} is not byte aligned")
    return bits // 8


def transfer_time_ps(num_bytes: int, bits_per_second: float) -> int:
    """Wire/bus time to move ``num_bytes`` at ``bits_per_second``."""
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    if bits_per_second <= 0:
        raise ValueError(f"bandwidth must be positive, got {bits_per_second}")
    return round(num_bytes * 8 * PICOSECONDS_PER_SECOND / bits_per_second)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value // alignment * alignment
