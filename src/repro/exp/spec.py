"""Experiment points and their content-addressed identity.

A :class:`RunSpec` is everything needed to reproduce one
:class:`~repro.nic.throughput.ThroughputSimulator` run: the full
:class:`~repro.nic.config.NicConfig`, a :class:`WorkloadSpec`
(frame sizes, offered load, burstiness) and the measurement windows.
Specs are plain frozen dataclasses, so they pickle across process
boundaries and hash to a stable content key.

The cache key (:func:`spec_key`) is a SHA-256 over a canonical JSON
rendering of the spec *plus* the code-relevant calibration constants
(Table 1 profiles, batching constants, the send-task split, lock hold
times and a schema version).  Changing any model constant therefore
invalidates every cached result automatically — the cache can never
serve a number the current code would not produce.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.fabric.spec import FabricSpec
from repro.faults import FaultPlan
from repro.host.rss import RssSpec
from repro.net.workload import ConstantSize, FrameSizeModel, ImixSize
from repro.nic.config import NicConfig

#: Bump when the meaning of cached results changes in a way the
#: automatic constant-hashing below cannot see (e.g. a simulator
#: algorithm change with identical calibration constants).
#: v2: fabric runs default to the streaming latency estimator, so
#: fabric percentiles differ (within the documented error bound) from
#: v1's exact-sample values.
CACHE_SCHEMA_VERSION = 2


# ----------------------------------------------------------------------
# Canonical description of arbitrary config values
# ----------------------------------------------------------------------
def describe(value: Any) -> Any:
    """Recursively convert a value into canonical JSON-able primitives.

    * dataclasses become ``{"__type__": name, fields...}`` (sorted keys
      come from ``json.dumps(..., sort_keys=True)`` at hash time);
    * enums become their value;
    * floats are rendered via ``repr`` so the hash is exact, not
      subject to formatting;
    * mappings / sequences recurse.

    A dataclass may name fields in a ``DESCRIBE_OMIT_DEFAULTS`` class
    attribute: those fields are *omitted* from the description while
    they hold their declared default.  This is how a frozen spec grows
    a new optional knob (``FabricSpec.qos``, flow ``qos_class`` tags)
    without flipping the hash — and therefore the cache key and golden
    digest — of every spec that does not use it, the same contract
    :meth:`RunSpec.key_inputs` applies to its own optional fields.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        omit_defaults = getattr(type(value), "DESCRIBE_OMIT_DEFAULTS", ())
        out: Dict[str, Any] = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            field_value = getattr(value, f.name)
            if (
                f.name in omit_defaults
                and f.default is not dataclasses.MISSING
                and field_value == f.default
            ):
                continue
            out[f.name] = describe(field_value)
        return out
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "value": describe(value.value)}
    if isinstance(value, float):
        return {"__float__": repr(value)}
    if isinstance(value, dict):
        return {str(k): describe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [describe(v) for v in value]
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise TypeError(f"cannot canonically describe {type(value).__name__}: {value!r}")


def code_constants() -> Dict[str, Any]:
    """The calibration constants a cached result implicitly depends on.

    Anything that changes a :class:`ThroughputResult` without appearing
    in the :class:`NicConfig` belongs here; including it in the cache
    key turns "edit a constant" into a clean cache miss.
    """
    from repro.firmware import profiles as fw
    from repro.host.descriptors import DESCRIPTOR_BYTES
    from repro.nic import throughput as tp

    return {
        "schema": CACHE_SCHEMA_VERSION,
        "ideal_profiles": describe(
            {name: p.per_frame for name, p in fw.IDEAL_PROFILES.items()}
        ),
        "send_bds_per_fetch": fw.SEND_BDS_PER_FETCH,
        "recv_bds_per_fetch": fw.RECV_BDS_PER_FETCH,
        "bds_per_sent_frame": fw.BDS_PER_SENT_FRAME,
        "descriptor_bytes": DESCRIPTOR_BYTES,
        "start_fraction": describe(tp._START_FRACTION),
        "hold_txq": describe(tp._HOLD_TXQ),
        "hold_rxpool": describe(tp._HOLD_RXPOOL),
        "hold_notify": describe(tp._HOLD_NOTIFY),
        "contention_interval_ps": tp.ThroughputSimulator._contention_interval_ps,
    }


# ----------------------------------------------------------------------
# Workload description
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkloadSpec:
    """Serializable description of one experiment's traffic.

    ``kind`` selects the frame-size model: ``"constant"`` (the paper's
    uniform datagrams) or ``"imix"`` (the 7:4:1 Internet mix extension,
    with ``imix_pattern`` as (udp_payload, count) pairs).
    """

    kind: str = "constant"
    udp_payload_bytes: int = 1472
    imix_pattern: Tuple[Tuple[int, int], ...] = ImixSize.DEFAULT_PATTERN
    offered_fraction: float = 1.0
    rx_burst_frames: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("constant", "imix"):
            raise ValueError(f"workload kind must be constant/imix, got {self.kind!r}")

    def build_size_model(self) -> Optional[FrameSizeModel]:
        """Live size model, or ``None`` for the simulator's built-in
        :class:`ConstantSize` path (kept ``None`` so constant-size runs
        construct exactly what the pre-engine drivers constructed)."""
        if self.kind == "imix":
            return ImixSize(self.imix_pattern)
        return None

    @staticmethod
    def imix(pattern: Tuple[Tuple[int, int], ...] = ImixSize.DEFAULT_PATTERN,
             offered_fraction: float = 1.0,
             rx_burst_frames: int = 1) -> "WorkloadSpec":
        return WorkloadSpec(
            kind="imix",
            imix_pattern=tuple(tuple(entry) for entry in pattern),
            offered_fraction=offered_fraction,
            rx_burst_frames=rx_burst_frames,
        )


# ----------------------------------------------------------------------
# One experiment point
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully-specified simulation point.

    ``label`` is a human-facing tag (used in progress lines and result
    tables); it is deliberately *excluded* from the cache key so the
    same physical experiment under two drivers' names is one cache
    entry.
    """

    config: NicConfig
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    warmup_s: float = 0.4e-3
    measure_s: float = 0.8e-3
    label: str = ""
    fault_plan: Optional[FaultPlan] = None
    #: When set, the point is a :class:`~repro.fabric.FabricSimulator`
    #: run (N NICs + wire + flows) instead of a single-NIC throughput
    #: run; ``workload`` is ignored (traffic comes from the flows).
    fabric_spec: Optional[FabricSpec] = None
    #: When set, the host interface is the multi-queue RSS model
    #: (:class:`~repro.host.rss.RssSpec`) instead of the paper's single
    #: descriptor-ring pair.  Applies to both single-NIC and fabric
    #: points.
    rss: Optional[RssSpec] = None

    def __post_init__(self) -> None:
        if self.warmup_s < 0 or self.measure_s <= 0:
            raise ValueError("need non-negative warmup and positive measure window")

    def key_inputs(self) -> Dict[str, Any]:
        """Everything that feeds the content hash (label excluded)."""
        inputs = {
            "config": describe(self.config),
            "workload": describe(self.workload),
            "warmup_s": describe(self.warmup_s),
            "measure_s": describe(self.measure_s),
            "constants": code_constants(),
        }
        # Only fault-injected points extend the key: fault-free specs
        # keep their pre-fault-layer hashes, so existing cached results
        # stay valid.
        if self.fault_plan is not None:
            inputs["fault_plan"] = describe(self.fault_plan)
        # Same contract for fabric points: single-NIC specs keep their
        # pre-fabric-layer hashes byte-identical.
        if self.fabric_spec is not None:
            inputs["fabric_spec"] = describe(self.fabric_spec)
        # And for multi-queue points: single-ring specs keep their
        # pre-RSS-layer hashes byte-identical.
        if self.rss is not None:
            inputs["rss"] = describe(self.rss)
        return inputs

    @property
    def key(self) -> str:
        return spec_key(self)

    def describe_label(self) -> str:
        return self.label or (
            f"{self.config.label}/{self.workload.kind}"
            f"{self.workload.udp_payload_bytes}"
        )


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of a :class:`RunSpec` (hex SHA-256)."""
    canonical = json.dumps(
        spec.key_inputs(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def spec_seed(spec: RunSpec) -> int:
    """Deterministic per-point seed, derived from the content key.

    The simulator is currently fully deterministic, but workers seed
    ``random`` with this before each run so any future stochastic
    component (randomized workloads, jittered arrivals) stays
    reproducible point-by-point regardless of scheduling order.
    """
    return int(spec_key(spec)[:16], 16)
