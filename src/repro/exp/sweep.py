"""The :class:`Sweep` abstraction — a named grid of experiment points.

A sweep is just an ordered list of :class:`~repro.exp.spec.RunSpec`
points with a name, plus constructors for the grids the paper's
evaluation actually uses (cores x frequency, frame sizes, arbitrary
config perturbations).  Running one through the
:class:`~repro.exp.runner.SweepRunner` yields results in point order;
:meth:`Sweep.rows` flattens them into JSON/CSV-friendly records for the
CLI.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.exp.runner import SweepOutcome, SweepRunner
from repro.exp.spec import RunSpec, WorkloadSpec
from repro.fabric.spec import FabricSpec
from repro.fabric.topology import TopologySpec
from repro.faults import FaultPlan
from repro.firmware.ordering import OrderingMode
from repro.host.rss import RssSpec
from repro.nic.config import NicConfig
from repro.units import mhz

#: Fault-plan rate fields :meth:`Sweep.fault_grid` can sweep over.
FAULT_AXES = ("rx_fcs_rate", "sdram_error_rate", "pci_stall_rate")


class Sweep:
    """An ordered, named collection of simulation points."""

    def __init__(self, name: str, specs: Sequence[RunSpec]) -> None:
        self.name = name
        self.specs: List[RunSpec] = list(specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def __add__(self, other: "Sweep") -> "Sweep":
        return Sweep(f"{self.name}+{other.name}", self.specs + other.specs)

    # ------------------------------------------------------------------
    # Constructors for the evaluation's standard grids
    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        name: str,
        core_counts: Sequence[int],
        frequencies_mhz: Sequence[float],
        udp_payload_bytes: int = 1472,
        ordering: OrderingMode = OrderingMode.SOFTWARE,
        base_config: Optional[NicConfig] = None,
        warmup_s: float = 0.4e-3,
        measure_s: float = 0.8e-3,
    ) -> "Sweep":
        """Figure-7-style cores x frequency grid."""
        base = base_config if base_config is not None else NicConfig()
        specs = []
        for cores in core_counts:
            for frequency in frequencies_mhz:
                config = replace(
                    base,
                    cores=cores,
                    core_frequency_hz=mhz(frequency),
                    ordering_mode=ordering,
                )
                specs.append(
                    RunSpec(
                        config=config,
                        workload=WorkloadSpec(udp_payload_bytes=udp_payload_bytes),
                        warmup_s=warmup_s,
                        measure_s=measure_s,
                        label=f"{cores}c@{frequency:g}MHz",
                    )
                )
        return cls(name, specs)

    @classmethod
    def frame_sizes(
        cls,
        name: str,
        udp_sizes: Sequence[int],
        configs: Sequence[NicConfig],
        warmup_s: float = 0.4e-3,
        measure_s: float = 0.8e-3,
    ) -> "Sweep":
        """Figure-8-style frame-size sweep over one or more configs."""
        specs = []
        for payload in udp_sizes:
            for config in configs:
                specs.append(
                    RunSpec(
                        config=config,
                        workload=WorkloadSpec(udp_payload_bytes=payload),
                        warmup_s=warmup_s,
                        measure_s=measure_s,
                        label=f"{config.label}/{payload}B",
                    )
                )
        return cls(name, specs)

    @classmethod
    def of_configs(
        cls,
        name: str,
        configs: Iterable[NicConfig],
        udp_payload_bytes: int = 1472,
        warmup_s: float = 0.4e-3,
        measure_s: float = 0.8e-3,
        labels: Optional[Sequence[str]] = None,
    ) -> "Sweep":
        """Ablation-style sweep: same workload, perturbed configs."""
        configs = list(configs)
        if labels is not None and len(labels) != len(configs):
            raise ValueError("labels must match configs one-to-one")
        specs = [
            RunSpec(
                config=config,
                workload=WorkloadSpec(udp_payload_bytes=udp_payload_bytes),
                warmup_s=warmup_s,
                measure_s=measure_s,
                label=labels[i] if labels is not None else config.label,
            )
            for i, config in enumerate(configs)
        ]
        return cls(name, specs)

    @classmethod
    def fault_grid(
        cls,
        name: str,
        axis: str,
        rates: Sequence[float],
        base_config: Optional[NicConfig] = None,
        udp_payload_bytes: int = 1472,
        seed: int = 0,
        plan: Optional[FaultPlan] = None,
        warmup_s: float = 0.4e-3,
        measure_s: float = 0.8e-3,
    ) -> "Sweep":
        """Throughput-under-fault-rate curve along one fault axis.

        ``axis`` names one of the :class:`~repro.faults.FaultPlan` rate
        fields (see :data:`FAULT_AXES`); each point perturbs ``plan``
        (default: a pristine plan carrying ``seed``) to that rate.  A
        rate-0 point whose plan ends up disabled is issued with
        ``fault_plan=None`` so it shares its cache entry — and its exact
        simulation path — with the fault-free baseline.
        """
        if axis not in FAULT_AXES:
            raise ValueError(
                f"fault axis must be one of {FAULT_AXES}, got {axis!r}"
            )
        base = base_config if base_config is not None else NicConfig()
        base_plan = plan if plan is not None else FaultPlan(seed=seed)
        specs = []
        for rate in rates:
            point_plan = replace(base_plan, **{axis: float(rate)})
            specs.append(
                RunSpec(
                    config=base,
                    workload=WorkloadSpec(udp_payload_bytes=udp_payload_bytes),
                    warmup_s=warmup_s,
                    measure_s=measure_s,
                    label=f"{axis}={rate:g}",
                    fault_plan=point_plan if point_plan.enabled else None,
                )
            )
        return cls(name, specs)

    @classmethod
    def fabric_grid(
        cls,
        name: str,
        base_fabric: FabricSpec,
        loads: Sequence[float],
        base_config: Optional[NicConfig] = None,
        warmup_s: float = 0.2e-3,
        measure_s: float = 0.5e-3,
    ) -> "Sweep":
        """Offered-load sweep over a fabric topology.

        Each point scales every stream flow's ``offered_fraction`` via
        :meth:`~repro.fabric.spec.FabricSpec.with_load`; RPC flows are
        closed-loop and self-pacing, so they ride along unchanged.  The
        interesting output is the latency-vs-load curve the single-NIC
        harness cannot produce (see ``docs/fabric.md``).
        """
        base = base_config if base_config is not None else NicConfig()
        specs = [
            RunSpec(
                config=base,
                warmup_s=warmup_s,
                measure_s=measure_s,
                label=f"load={load:g}",
                fabric_spec=base_fabric.with_load(float(load)),
            )
            for load in loads
        ]
        return cls(name, specs)

    @classmethod
    def qos_grid(
        cls,
        name: str,
        base_fabric: FabricSpec,
        loads: Sequence[float],
        overload_flows: Sequence[str],
        base_config: Optional[NicConfig] = None,
        warmup_s: float = 0.2e-3,
        measure_s: float = 0.5e-3,
    ) -> "Sweep":
        """Mixed-criticality isolation sweep: overload one lane only.

        ``base_fabric`` must carry a :class:`~repro.qos.QosSpec`.  Each
        point re-paces only the streams named in ``overload_flows``
        (:meth:`FabricSpec.with_load` with its ``flows`` restriction) —
        typically the best-effort lane — while every other flow holds
        its provisioned load.  The interesting output is whether the
        guaranteed class's tail latency moves as the best-effort load
        crosses saturation (it must not; ``repro qos`` tabulates it).
        """
        if base_fabric.qos is None:
            raise ValueError("qos_grid needs a fabric spec with a qos config")
        base = base_config if base_config is not None else NicConfig()
        specs = [
            RunSpec(
                config=base,
                warmup_s=warmup_s,
                measure_s=measure_s,
                label=f"overload={load:g}",
                fabric_spec=base_fabric.with_load(
                    float(load), flows=overload_flows
                ),
            )
            for load in loads
        ]
        return cls(name, specs)

    @classmethod
    def topology_grid(
        cls,
        name: str,
        base_fabric: FabricSpec,
        spine_counts: Sequence[int],
        racks: int = 2,
        hosts_per_rack: int = 2,
        base_config: Optional[NicConfig] = None,
        warmup_s: float = 0.2e-3,
        measure_s: float = 0.5e-3,
    ) -> "Sweep":
        """Oversubscription sweep: same traffic, growing spine tier.

        Each point replaces ``base_fabric``'s topology with a
        ``racks x hosts_per_rack`` leaf-spine carrying that many spines
        (ECMP seed and shard count carried over from the base topology
        when it has one), so the curve isolates how the leaf→spine
        oversubscription ratio moves tail latency and per-link drops
        under identical offered traffic.  ``base_fabric.nics`` must be
        ``racks * hosts_per_rack``; the spec's attachment validation
        enforces it per point.
        """
        base = base_config if base_config is not None else NicConfig()
        base_topo = base_fabric.topology
        specs = []
        for spines in spine_counts:
            topo = TopologySpec.leaf_spine(
                racks=racks,
                hosts_per_rack=hosts_per_rack,
                spines=spines,
                ecmp_seed=base_topo.ecmp_seed if base_topo is not None else 0,
                flow_shards=base_topo.flow_shards if base_topo is not None else 8,
            )
            specs.append(
                RunSpec(
                    config=base,
                    warmup_s=warmup_s,
                    measure_s=measure_s,
                    label=f"spines={spines}",
                    fabric_spec=replace(base_fabric, topology=topo),
                )
            )
        return cls(name, specs)

    @classmethod
    def rss_grid(
        cls,
        name: str,
        ring_counts: Sequence[int],
        base_config: Optional[NicConfig] = None,
        base_rss: Optional[RssSpec] = None,
        fabric: Optional[FabricSpec] = None,
        udp_payload_bytes: int = 1472,
        task_level_rss: bool = True,
        warmup_s: float = 0.4e-3,
        measure_s: float = 0.8e-3,
    ) -> "Sweep":
        """Paper-vs-modern host-interface ablation over ring counts.

        Points with ``rings <= 1`` are issued with ``rss=None`` — the
        paper's single-ring host interface and frame-level parallel
        firmware, sharing cache entries (and the exact simulation path)
        with every pre-RSS result.  Multi-ring points carry an
        :class:`~repro.host.rss.RssSpec` derived from ``base_rss`` and,
        by default, the task-level firmware organization — the modern
        multi-queue NIC the comparison targets.  Pass ``fabric`` to run
        every point against a fabric topology (RPC/IMIX flows) instead
        of the analytic single-NIC workload.
        """
        base = base_config if base_config is not None else NicConfig()
        template = base_rss if base_rss is not None else RssSpec()
        specs = []
        for rings in ring_counts:
            if rings <= 1:
                config = base
                rss = None
                label = "1ring-paper"
            else:
                config = (
                    replace(base, task_level_firmware=True)
                    if task_level_rss
                    else base
                )
                rss = replace(template, rings=int(rings))
                label = f"{rings}ring-rss"
            specs.append(
                RunSpec(
                    config=config,
                    workload=WorkloadSpec(udp_payload_bytes=udp_payload_bytes),
                    warmup_s=warmup_s,
                    measure_s=measure_s,
                    label=label,
                    fabric_spec=fabric,
                    rss=rss,
                )
            )
        return cls(name, specs)

    # ------------------------------------------------------------------
    def run(self, runner: Optional[SweepRunner] = None, **runner_kwargs) -> SweepOutcome:
        """Execute every point; ``runner_kwargs`` build a runner if none
        is given (``jobs=``, ``cache_dir=``, ...)."""
        if runner is None:
            runner_kwargs.setdefault("label", self.name)
            runner = SweepRunner(**runner_kwargs)
        return runner.run(self.specs)

    # ------------------------------------------------------------------
    @staticmethod
    def _rss_columns(spec: RunSpec, result) -> Dict[str, object]:
        """Host-interface columns for sweeps containing RSS points."""
        row: Dict[str, object] = {
            "rss_rings": spec.rss.rings if spec.rss is not None else 1,
        }
        if spec.fabric_spec is not None:
            reports = [nic.rss for nic in result.nics if nic.rss is not None]
        else:
            reports = [result.rss] if getattr(result, "rss", None) else []
        if reports:
            cores = [core for rep in reports for core in rep["per_core"]]
            row["host_core_busy_max"] = max(c["busy_fraction"] for c in cores)
            row["host_completions_per_s"] = sum(
                c["completions_per_s"] for c in cores
            )
        else:
            row["host_core_busy_max"] = None
            row["host_completions_per_s"] = None
        return row

    @staticmethod
    def _qos_columns(result) -> Dict[str, object]:
        """Per-class columns for sweeps containing QoS fabric points."""
        row: Dict[str, object] = {}
        report = getattr(result, "qos", None) or {"classes": {}}
        for class_name, entry in report["classes"].items():
            prefix = f"qos_{class_name}"
            row[f"{prefix}_goodput_gbps"] = entry["goodput_gbps"]
            row[f"{prefix}_p999_us"] = entry["oneway"]["p999_us"]
            row[f"{prefix}_tail_drops"] = entry["tail_drops"]
            row[f"{prefix}_red_drops"] = entry["red_drops"]
            row[f"{prefix}_pauses"] = entry["pause_events"]
        return row

    @staticmethod
    def rows(outcome: SweepOutcome) -> List[Dict[str, object]]:
        """Flatten an outcome into records for JSON/CSV export."""
        rows: List[Dict[str, object]] = []
        faulted_sweep = any(spec.fault_plan is not None for spec in outcome.specs)
        # RSS columns only materialize for sweeps carrying an RssSpec
        # somewhere, so legacy exports keep their exact schema.
        rss_sweep = any(spec.rss is not None for spec in outcome.specs)
        # Same contract for QoS columns: only sweeps with a QoS fabric
        # point somewhere grow the per-class columns.
        qos_sweep = any(
            spec.fabric_spec is not None and spec.fabric_spec.qos is not None
            for spec in outcome.specs
        )
        for spec, result, key, cached in zip(
            outcome.specs, outcome.results, outcome.keys, outcome.cached_flags
        ):
            if spec.fabric_spec is not None:
                # Fabric points report system-level columns; they only
                # appear in sweeps that contain fabric specs, so legacy
                # single-NIC exports keep their exact schema.
                flow = result.primary_flow
                row = {
                    "label": spec.describe_label(),
                    "key": key,
                    "cached": cached,
                    "cores": spec.config.cores,
                    "mhz": spec.config.core_frequency_hz / 1e6,
                    "nics": spec.fabric_spec.nics,
                    "switch": spec.fabric_spec.switch,
                    "measure_s": spec.measure_s,
                    "aggregate_goodput_gbps": result.aggregate_goodput_gbps,
                    "switch_drops": result.switch_drops,
                    "mac_drops": result.mac_drops,
                    "flow": flow.name,
                    "delivered": flow.delivered,
                    "lost": flow.lost,
                    "retransmits": flow.retransmits,
                    "oneway_p50_us": flow.oneway.p50_us,
                    "oneway_p99_us": flow.oneway.p99_us,
                    "oneway_p999_us": flow.oneway.p999_us,
                    "rtt_p50_us": flow.rtt.p50_us if flow.rtt else None,
                    "rtt_p99_us": flow.rtt.p99_us if flow.rtt else None,
                    "rtt_p999_us": flow.rtt.p999_us if flow.rtt else None,
                }
                if rss_sweep:
                    row.update(Sweep._rss_columns(spec, result))
                if qos_sweep:
                    row.update(Sweep._qos_columns(result))
                rows.append(row)
                continue
            row: Dict[str, object] = {
                "label": spec.describe_label(),
                "key": key,
                "cached": cached,
                "cores": spec.config.cores,
                "mhz": spec.config.core_frequency_hz / 1e6,
                "banks": spec.config.scratchpad_banks,
                "ordering": spec.config.ordering_mode.value,
                "udp_payload_bytes": spec.workload.udp_payload_bytes,
                "workload": spec.workload.kind,
                "offered_fraction": spec.workload.offered_fraction,
                "measure_s": spec.measure_s,
                "udp_throughput_gbps": result.udp_throughput_gbps,
                "line_rate_fraction": result.line_rate_fraction(),
                "total_fps": result.total_fps,
                "core_utilization": result.core_utilization,
                "rx_dropped": result.rx_dropped,
            }
            if faulted_sweep:
                # Fault columns only materialize for sweeps that carry a
                # plan somewhere, so fault-free exports keep their exact
                # pre-fault-layer schema.
                counters = getattr(result, "fault_counters", None) or {}
                row["fault_seed"] = (
                    spec.fault_plan.seed if spec.fault_plan is not None else None
                )
                row["rx_holes"] = getattr(result, "rx_holes", 0)
                row["rx_fcs_drops"] = counters.get("rx_fcs_drops", 0)
                row["sdram_retries"] = counters.get("sdram_retries", 0)
                row["sdram_exhausted"] = counters.get("sdram_exhausted", 0)
                row["pci_stalls"] = counters.get("pci_stalls", 0)
                row["queue_overflows"] = counters.get("queue_overflows", 0)
                row["queue_drops"] = counters.get("queue_drops", 0)
            if rss_sweep:
                row.update(Sweep._rss_columns(spec, result))
            rows.append(row)
        return rows
