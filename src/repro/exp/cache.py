"""Content-addressed on-disk cache for simulation results.

Layout: ``<root>/<key[:2]>/<key>.pkl`` where ``key`` is the hex
SHA-256 from :func:`repro.exp.spec.spec_key`.  Each file is a pickle of
``{"version", "key", "result"}`` written atomically (temp file +
``os.replace``), so an interrupted sweep never leaves a torn entry —
the next run simply re-executes the missing points, which is what makes
resumption free.

Invalidation is purely by key: config fields, workload parameters,
measurement windows and the model's calibration constants all feed the
hash, so there is no staleness protocol to get wrong.  A cache
directory can always be deleted wholesale; it only ever holds derived
data.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import Optional

_ENTRY_VERSION = 1


class ResultCache:
    """Disk-backed content-addressed store of ``ThroughputResult``s."""

    def __init__(self, root: str) -> None:
        self.root = str(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # -- addressing ------------------------------------------------------
    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.pkl")

    def __contains__(self, key: str) -> bool:
        return os.path.exists(self.path_for(key))

    # -- read ------------------------------------------------------------
    def get(self, key: str):
        """Cached result for ``key``, or ``None`` on a miss.

        Corrupt or unreadable entries (torn writes predating the atomic
        protocol, version skew, disk errors) count as misses and are
        removed so the slot heals on the next store.
        """
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
            if (
                isinstance(entry, dict)
                and entry.get("version") == _ENTRY_VERSION
                and entry.get("key") == key
            ):
                self.hits += 1
                return entry["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            pass
        # Readable-but-wrong entry: evict it.
        try:
            os.remove(path)
        except OSError:
            pass
        self.misses += 1
        return None

    # -- write -----------------------------------------------------------
    def put(self, key: str, result) -> str:
        """Store ``result`` under ``key`` atomically; returns the path."""
        path = self.path_for(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        payload = pickle.dumps(
            {"version": _ENTRY_VERSION, "key": key, "result": result},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    # -- maintenance -----------------------------------------------------
    def __len__(self) -> int:
        count = 0
        if not os.path.isdir(self.root):
            return 0
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if os.path.isdir(shard_dir):
                count += sum(
                    1 for name in os.listdir(shard_dir) if name.endswith(".pkl")
                )
        return count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({self.root!r}, {len(self)} entries, "
            f"{self.hits} hits / {self.misses} misses this process)"
        )


def default_cache_dir() -> Optional[str]:
    """Cache directory from ``REPRO_CACHE_DIR``, or ``None`` (disabled).

    Caching is opt-in: tests and one-off library calls should not write
    to the filesystem unless asked.  The CLI and CI set this (or pass
    ``--cache-dir``) to make overlapping drivers share work.
    """
    value = os.environ.get("REPRO_CACHE_DIR", "").strip()
    return value or None
