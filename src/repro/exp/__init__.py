"""Experiment engine: parallel sweeps with content-addressed caching.

The paper's evaluation is a large grid of independent simulations; this
package is the substrate that makes it N-core fast and incremental:

* :class:`RunSpec` / :class:`WorkloadSpec` — a serializable description
  of one simulation point, content-hashed by :func:`spec_key`;
* :class:`Sweep` — a named grid of points with constructors for the
  evaluation's standard shapes (cores x frequency, frame sizes,
  config ablations);
* :class:`SweepRunner` / :func:`run_specs` — fans points across a
  process pool with deterministic per-point seeding, deduplication,
  progress/ETA via :mod:`repro.obs.progress`, and a
* :class:`ResultCache` — content-addressed on-disk store so re-runs
  and overlapping drivers are cache hits and interrupted sweeps resume
  where they stopped.

Environment knobs for library callers that never see CLI flags:
``REPRO_SWEEP_JOBS`` (worker count) and ``REPRO_CACHE_DIR`` (enables
the cache).  See ``docs/experiments.md``.
"""

from repro.exp.cache import ResultCache, default_cache_dir
from repro.exp.runner import (
    JOBS_ENV,
    SweepOutcome,
    SweepRunner,
    default_jobs,
    execute_spec,
    run_spec,
    run_specs,
)
from repro.exp.spec import (
    CACHE_SCHEMA_VERSION,
    RunSpec,
    WorkloadSpec,
    code_constants,
    describe,
    spec_key,
    spec_seed,
)
from repro.exp.sweep import FAULT_AXES, Sweep

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "FAULT_AXES",
    "JOBS_ENV",
    "ResultCache",
    "RunSpec",
    "Sweep",
    "SweepOutcome",
    "SweepRunner",
    "WorkloadSpec",
    "code_constants",
    "default_cache_dir",
    "default_jobs",
    "describe",
    "execute_spec",
    "run_spec",
    "run_specs",
    "spec_key",
    "spec_seed",
]
