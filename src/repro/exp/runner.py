"""Parallel, cache-aware execution of experiment points.

The evaluation of the paper is a grid of *independent* simulations
(Figures 7-8 sweep cores x clock x frame size; the tables and ablations
each re-run the simulator with perturbed configs), so the runner's job
is embarrassingly parallel: fan :class:`~repro.exp.spec.RunSpec` points
across a :class:`concurrent.futures.ProcessPoolExecutor`, short-circuit
points whose content key is already in the
:class:`~repro.exp.cache.ResultCache`, and report progress/ETA through
:class:`repro.obs.progress.ProgressReporter`.

Determinism: the simulator itself is deterministic, points are
deduplicated and dispatched by content key, and each worker seeds
``random`` from the point's key before running — so a sweep's results
do not depend on the number of jobs, completion order, or whether any
point came from cache.
"""

from __future__ import annotations

import os
import random
import sys
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exp.cache import ResultCache, default_cache_dir
from repro.exp.spec import RunSpec, spec_seed
from repro.obs.progress import ProgressReporter

#: Environment override for library callers that never see a ``--jobs``
#: flag (the benchmark drivers): ``REPRO_SWEEP_JOBS=4 pytest benchmarks``.
JOBS_ENV = "REPRO_SWEEP_JOBS"


def default_jobs() -> int:
    value = os.environ.get(JOBS_ENV, "").strip()
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            pass
    return 1


# ----------------------------------------------------------------------
# Worker entry point (must be module-level for pickling)
# ----------------------------------------------------------------------
def execute_spec(spec: RunSpec):
    """Run one point to completion; the unit of work shipped to workers."""
    from repro.nic.throughput import ThroughputSimulator

    random.seed(spec_seed(spec))
    if spec.fabric_spec is not None:
        from repro.fabric import FabricSimulator

        fabric = FabricSimulator(
            spec.config, spec.fabric_spec, fault_plan=spec.fault_plan,
            rss=spec.rss,
        )
        return fabric.run(spec.warmup_s, spec.measure_s)
    workload = spec.workload
    simulator = ThroughputSimulator(
        spec.config,
        workload.udp_payload_bytes,
        offered_fraction=workload.offered_fraction,
        size_model=workload.build_size_model(),
        rx_burst_frames=workload.rx_burst_frames,
        fault_plan=spec.fault_plan,
        rss=spec.rss,
    )
    return simulator.run(spec.warmup_s, spec.measure_s)


def _execute_keyed(item):
    key, spec = item
    return key, execute_spec(spec)


# ----------------------------------------------------------------------
# Outcome bookkeeping
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Results of one engine invocation, in input-spec order."""

    specs: List[RunSpec]
    results: List[object]
    cache_hits: int = 0
    executed: int = 0
    deduplicated: int = 0
    elapsed_s: float = 0.0
    keys: List[str] = field(default_factory=list)
    cached_flags: List[bool] = field(default_factory=list)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------
class SweepRunner:
    """Fans experiment points across processes with result caching.

    Parameters
    ----------
    jobs:
        Worker processes.  ``None`` reads ``REPRO_SWEEP_JOBS`` (default
        1).  With one job everything runs inline — no pool, no pickling
        overhead — which is also the fallback used when a pool cannot
        be created (restricted environments).
    cache_dir:
        Directory for the content-addressed result cache.  ``None``
        reads ``REPRO_CACHE_DIR``; empty/unset disables caching.
    use_cache:
        ``False`` disables both cache reads and writes even when a
        directory is configured (the CLI's ``--no-cache``).
    progress:
        ``None`` silences progress lines; otherwise a stream (e.g.
        ``sys.stderr``).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        progress=None,
        label: str = "sweep",
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        resolved = cache_dir if cache_dir is not None else default_cache_dir()
        self.cache: Optional[ResultCache] = (
            ResultCache(resolved) if (use_cache and resolved) else None
        )
        self.progress_stream = progress
        self.label = label

    # ------------------------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> SweepOutcome:
        """Execute ``specs``; returns results in input order.

        Identical points (same content key) are executed once and
        fanned out; cached points are loaded without simulating.
        """
        specs = list(specs)
        reporter = ProgressReporter(
            len(specs), label=self.label, stream=self.progress_stream
        )
        keys = [spec.key for spec in specs]
        results: Dict[str, object] = {}
        cached_keys = set()

        # 1. Deduplicate within the batch.
        unique: Dict[str, RunSpec] = {}
        for key, spec in zip(keys, specs):
            unique.setdefault(key, spec)
        deduplicated = len(specs) - len(unique)

        # 2. Cache lookups.
        todo: Dict[str, RunSpec] = {}
        for key, spec in unique.items():
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[key] = cached
                cached_keys.add(key)
                reporter.update(cache_hit=True)
            else:
                todo[key] = spec

        # 3. Execute the remainder.
        if todo:
            if self.jobs > 1 and len(todo) > 1:
                self._run_pool(todo, results, reporter)
            else:
                for key, spec in todo.items():
                    result = execute_spec(spec)
                    self._store(key, result, results, reporter)

        # 4. Reassemble in input order (duplicates share one result).
        ordered = [results[key] for key in keys]
        outcome = SweepOutcome(
            specs=specs,
            results=ordered,
            cache_hits=reporter.cache_hits,
            executed=reporter.executed,
            deduplicated=deduplicated,
            elapsed_s=reporter.elapsed_s,
            keys=keys,
            cached_flags=[key in cached_keys for key in keys],
        )
        if self.progress_stream is not None:
            self.progress_stream.write(reporter.summary() + "\n")
        return outcome

    # ------------------------------------------------------------------
    def _store(self, key, result, results, reporter) -> None:
        results[key] = result
        if self.cache is not None:
            self.cache.put(key, result)
        reporter.update(cache_hit=False)

    def _run_pool(self, todo, results, reporter) -> None:
        """Fan out over a process pool; falls back to inline on failure."""
        items = list(todo.items())
        workers = min(self.jobs, len(items))
        try:
            executor = ProcessPoolExecutor(max_workers=workers)
        except (OSError, ValueError, NotImplementedError):
            for key, spec in items:
                self._store(key, execute_spec(spec), results, reporter)
            return
        try:
            pending = {executor.submit(_execute_keyed, item) for item in items}
            while pending:
                finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    key, result = future.result()
                    # Store (and cache) as soon as each point lands, so
                    # an interrupted sweep keeps everything completed
                    # before the interruption.
                    self._store(key, result, results, reporter)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


# ----------------------------------------------------------------------
# Convenience functions for library callers
# ----------------------------------------------------------------------
def run_specs(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
    progress=None,
    label: str = "sweep",
) -> List[object]:
    """Run points and return just the results, in input order."""
    runner = SweepRunner(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        progress=progress, label=label,
    )
    return runner.run(specs).results


def run_spec(
    spec: RunSpec,
    cache_dir: Optional[str] = None,
    use_cache: bool = True,
) -> object:
    """Run one point inline (cache-aware, never spawns workers)."""
    return run_specs([spec], jobs=1, cache_dir=cache_dir, use_cache=use_cache)[0]


def progress_stream(enabled: bool = True):
    """stderr when ``enabled``, else ``None`` (silence)."""
    return sys.stderr if enabled else None
