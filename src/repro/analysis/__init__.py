"""Experiment drivers: one entry point per paper table/figure.

Each function reruns the underlying experiment and returns structured
data; ``format_*`` helpers render the same rows the paper prints.  The
benchmarks under ``benchmarks/`` are thin wrappers over these.
"""

from repro.analysis.cache_study import MetadataTraceGenerator, figure3_cache_study
from repro.analysis.figures import figure7_scaling, figure8_frame_sizes
from repro.analysis.report import ascii_chart, format_table, render_series
from repro.analysis.tables import (
    table1_ideal_profile,
    table2_ilp_limits,
    table3_ipc_breakdown,
    table4_bandwidth,
    table5_rmw_profiles,
    table6_cycles,
)

__all__ = [
    "MetadataTraceGenerator",
    "figure3_cache_study",
    "figure7_scaling",
    "figure8_frame_sizes",
    "ascii_chart",
    "format_table",
    "render_series",
    "table1_ideal_profile",
    "table2_ilp_limits",
    "table3_ipc_breakdown",
    "table4_bandwidth",
    "table5_rmw_profiles",
    "table6_cycles",
]
