"""Calibration-sensitivity analysis.

The macro tier's per-handler cost profiles are calibrated constants
(DESIGN.md §4), so a fair question is whether the paper's headline
conclusions depend on the exact calibration.  This module perturbs the
model's free parameters and re-checks the three conclusions that
matter:

1. the RMW firmware sustains line rate at 166 MHz;
2. the software firmware needs a higher clock than the RMW firmware;
3. the send-side RMW savings exceed the receive-side savings.

A conclusion that only holds at the calibrated point would be an
artifact; all three should survive ±20-30% parameter noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.cpu.costmodel import OpProfile
from repro.exp import RunSpec, WorkloadSpec, run_spec, run_specs
from repro.firmware.ordering import OrderingMode
from repro.firmware.profiles import FirmwareProfiles
from repro.nic.config import NicConfig
from repro.units import mhz


def _scaled_profile(profile: OpProfile, factor: float) -> OpProfile:
    return profile.scaled(factor)


def _scaled_firmware(factor: float) -> FirmwareProfiles:
    """Scale every parallelization-overhead constant by ``factor``."""
    base = FirmwareProfiles()
    return FirmwareProfiles(
        dispatch_per_event=_scaled_profile(base.dispatch_per_event, factor),
        dispatch_per_frame=_scaled_profile(base.dispatch_per_frame, factor),
        reentrancy_per_frame=_scaled_profile(base.reentrancy_per_frame, factor),
        send_completion_per_frame=_scaled_profile(
            base.send_completion_per_frame, factor
        ),
        recv_completion_per_frame=_scaled_profile(
            base.recv_completion_per_frame, factor
        ),
        lock_acquire_release=_scaled_profile(base.lock_acquire_release, factor),
        spin_loop=base.spin_loop,
        spin_loop_cycles=base.spin_loop_cycles,
    )


@dataclass
class SensitivityPoint:
    """Outcome of re-checking the conclusions at one perturbation."""

    label: str
    rmw_166_fraction: float
    software_166_fraction: float
    min_rmw_line_rate_mhz: float
    send_saving_pct: float
    recv_saving_pct: float

    @property
    def software_needs_higher_clock(self) -> bool:
        """The calibration-sensitive conclusion: at this point, does the
        lock-based firmware fall short at 166 MHz where RMW does not?"""
        return (
            self.rmw_166_fraction > 0.97
            and self.software_166_fraction < self.rmw_166_fraction - 0.005
        )

    @property
    def conclusions_hold(self) -> bool:
        """The robust conclusions: RMW sustains line rate at 166 MHz, is
        never worse than the software firmware, and saves more on the
        send side than the receive side."""
        return (
            self.rmw_166_fraction > 0.97
            and self.rmw_166_fraction >= self.software_166_fraction - 0.01
            and self.send_saving_pct > self.recv_saving_pct
        )


def _evaluate(label: str, firmware: FirmwareProfiles,
              dma_latency_s: float = 1.2e-6,
              warmup_s: float = 0.3e-3, measure_s: float = 0.6e-3,
              jobs: Optional[int] = None,
              cache_dir: Optional[str] = None) -> SensitivityPoint:
    def spec(mode: OrderingMode, frequency_mhz: float) -> RunSpec:
        return RunSpec(
            config=NicConfig(
                cores=6,
                core_frequency_hz=mhz(frequency_mhz),
                ordering_mode=mode,
                firmware=firmware,
                dma_latency_s=dma_latency_s,
            ),
            workload=WorkloadSpec(udp_payload_bytes=1472),
            warmup_s=warmup_s,
            measure_s=measure_s,
            label=f"sens/{label}/{mode.value}@{frequency_mhz:g}",
        )

    def run(mode: OrderingMode, frequency_mhz: float):
        return run_spec(spec(mode, frequency_mhz), cache_dir=cache_dir)

    # The three headline points are independent — fan them out.
    rmw_166, software_166, software_200 = run_specs(
        [
            spec(OrderingMode.RMW, 166),
            spec(OrderingMode.SOFTWARE, 166),
            spec(OrderingMode.SOFTWARE, 200),
        ],
        jobs=jobs,
        cache_dir=cache_dir,
        label=f"sensitivity/{label}",
    )

    def per_frame(result, fn, frames):
        return result.function_stats[fn].instructions / max(1, frames)

    send_saving = 1 - (
        per_frame(rmw_166, "send_dispatch_ordering", rmw_166.tx_frames)
        / max(1e-9, per_frame(software_200, "send_dispatch_ordering", software_200.tx_frames))
    )
    recv_saving = 1 - (
        per_frame(rmw_166, "recv_dispatch_ordering", rmw_166.rx_frames)
        / max(1e-9, per_frame(software_200, "recv_dispatch_ordering", software_200.rx_frames))
    )

    # Find the lowest frequency (coarse grid) where the RMW firmware
    # still reaches line rate.  Sequential on purpose: the search
    # early-exits, so eagerly fanning out would simulate points the
    # serial code never ran.
    min_mhz = 166.0
    for frequency in (150, 133):
        if run(OrderingMode.RMW, frequency).line_rate_fraction() > 0.97:
            min_mhz = float(frequency)
        else:
            break

    return SensitivityPoint(
        label=label,
        rmw_166_fraction=rmw_166.line_rate_fraction(),
        software_166_fraction=software_166.line_rate_fraction(),
        min_rmw_line_rate_mhz=min_mhz,
        send_saving_pct=100 * send_saving,
        recv_saving_pct=100 * recv_saving,
    )


def sensitivity_analysis(
    overhead_factors: Tuple[float, ...] = (0.7, 1.0, 1.3),
    dma_latencies_s: Tuple[float, ...] = (0.6e-6, 1.2e-6, 2.4e-6),
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> List[SensitivityPoint]:
    """Perturb the calibrated constants and re-check the conclusions.

    Each perturbation's three headline simulations run through the
    experiment engine (``jobs`` workers, optional result cache); see
    ``docs/experiments.md``.
    """
    points: List[SensitivityPoint] = []
    for factor in overhead_factors:
        points.append(
            _evaluate(
                f"overhead x{factor:.1f}", _scaled_firmware(factor),
                jobs=jobs, cache_dir=cache_dir,
            )
        )
    for latency in dma_latencies_s:
        if latency == 1.2e-6:
            continue  # same as the overhead x1.0 point
        points.append(
            _evaluate(
                f"dma {latency * 1e6:.1f}us",
                FirmwareProfiles(),
                dma_latency_s=latency,
                jobs=jobs, cache_dir=cache_dir,
            )
        )
    return points
