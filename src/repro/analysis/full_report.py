"""One-shot regeneration of the paper's entire evaluation section.

:func:`generate_full_report` runs every experiment (Tables 1-6, Figures
3/7/8) and renders a single text report with paper-vs-measured columns —
the programmatic equivalent of reading Section 6.  Used by
``examples/reproduce_paper.py``; the per-experiment benchmarks under
``benchmarks/`` remain the canonical, asserted versions.
"""

from __future__ import annotations

import time
from typing import List

from repro.analysis.cache_study import figure3_cache_study
from repro.analysis.figures import (
    figure7_ethernet_limit,
    figure7_scaling,
    figure8_frame_sizes,
    saturation_frame_rates,
)
from repro.analysis.report import format_table
from repro.analysis.tables import (
    FUNCTION_LABELS,
    _run,
    rmw_reductions,
    table1_ideal_profile,
    table2_ilp_limits,
    table3_ipc_breakdown,
    table4_bandwidth,
    table5_rmw_profiles,
    table6_cycles,
)
from repro.firmware.kernels import ordering_instruction_counts
from repro.nic.config import RMW_166MHZ, SOFTWARE_200MHZ


def generate_full_report(fast: bool = False) -> str:
    """Run everything and return the rendered report.

    ``fast`` shrinks windows/grids (~20 s instead of a few minutes) at
    the cost of 1-3% noise in the measured values.
    """
    warmup = 0.3e-3 if fast else 0.4e-3
    measure = 0.5e-3 if fast else 1.0e-3
    started = time.time()
    sections: List[str] = []

    software = _run(SOFTWARE_200MHZ, warmup_s=warmup, measure_s=measure)
    rmw = _run(RMW_166MHZ, warmup_s=warmup, measure_s=measure)

    # -- headline ---------------------------------------------------------
    sections.append(format_table(
        ["Configuration", "UDP Gb/s", "Line-rate fraction", "Core util"],
        [
            ["software-only 6x200 MHz", software.udp_throughput_gbps,
             software.line_rate_fraction(), software.core_utilization],
            ["RMW-enhanced 6x166 MHz", rmw.udp_throughput_gbps,
             rmw.line_rate_fraction(), rmw.core_utilization],
        ],
        title="Headline: both line-rate configurations",
    ))

    # -- Table 1 ----------------------------------------------------------
    table1 = table1_ideal_profile()
    sections.append(format_table(
        ["Function", "Instructions", "Data accesses"],
        [
            [label, row["instructions"], row["data_accesses"]]
            for label, row in table1.items()
            if not label.startswith("(derived)")
        ],
        title="Table 1: ideal per-frame costs",
    ))
    derived = table1["(derived) line-rate MIPS"]
    sections.append(
        f"derived: {derived['total']:.0f} MIPS total (paper 435), "
        f"{table1['(derived) control bandwidth Gb/s']['total']:.2f} Gb/s control "
        "(paper 4.8), "
        f"{table1['(derived) frame data bandwidth Gb/s']['total']:.1f} Gb/s frame data "
        "(paper 39.5)"
    )

    # -- Table 2 ----------------------------------------------------------
    table2 = table2_ilp_limits(iterations=2 if fast else 4)
    columns = ["perfect/pbp", "perfect/nobp", "stalls/pbp", "stalls/pbp1", "stalls/nobp"]
    sections.append(format_table(
        ["Config"] + columns,
        [[f'{r["order"]}-{r["width"]}'] + [r[c] for c in columns] for r in table2],
        title="Table 2: theoretical peak IPC",
    ))

    # -- Figure 3 ----------------------------------------------------------
    figure3 = figure3_cache_study(frames=600 if fast else 1000)
    sections.append(format_table(
        ["Cache size", "Hit %", "Invalidating writes %"],
        [
            [size, 100 * stats.hit_ratio, 100 * stats.write_invalidation_ratio]
            for size, stats in sorted(figure3.items())
        ],
        title="Figure 3: MESI cache study (paper: plateau <~55%, inval <1%)",
    ))

    # -- Table 3 ----------------------------------------------------------
    table3 = table3_ipc_breakdown(result=software)
    paper3 = {"execution": 0.72, "imiss": 0.01, "load": 0.12,
              "conflict": 0.05, "pipeline": 0.10, "total": 1.00}
    sections.append(format_table(
        ["Component", "Measured", "Paper"],
        [[name, table3[name], paper3[name]] for name in paper3],
        title="Table 3: IPC breakdown, 6x200 MHz",
    ))

    # -- Table 4 ----------------------------------------------------------
    table4 = table4_bandwidth(result=software)
    sections.append(format_table(
        ["Memory", "Required", "Peak", "Consumed (Gb/s)"],
        [[name, d["required"], d["peak"], d["consumed"]] for name, d in table4.items()],
        title="Table 4: memory bandwidth",
    ))

    # -- Tables 5 and 6 -----------------------------------------------------
    table5 = table5_rmw_profiles(software, rmw)
    reductions = rmw_reductions(table5)
    isa_counts = ordering_instruction_counts(16)
    sections.append(format_table(
        ["RMW reduction", "Measured %", "Paper %"],
        [
            ["send ordering+dispatch instructions",
             reductions["send_ordering_instructions_pct"], 51.5],
            ["recv ordering+dispatch instructions",
             reductions["recv_ordering_instructions_pct"], 30.8],
            ["send ordering+dispatch accesses",
             reductions["send_ordering_accesses_pct"], 65.0],
            ["recv ordering+dispatch accesses",
             reductions["recv_ordering_accesses_pct"], 35.2],
            ["ISA-level ordering kernel instructions",
             100 * (1 - isa_counts["order_rmw"] / isa_counts["order_sw"]), "-"],
        ],
        title="Table 5: setb/update savings",
    ))
    table6 = table6_cycles(software, rmw)
    sections.append(format_table(
        ["Function", "Software @200", "RMW @166 (cycles/packet)"],
        [
            [FUNCTION_LABELS.get(name, name),
             row["software_cycles"], row["rmw_cycles"]]
            for name, row in table6.items()
        ],
        title="Table 6: cycles per packet (paper: send -28.4%, recv -4.7%)",
    ))

    # -- Figures 7 and 8 ----------------------------------------------------
    grid = ((2, 6), (150, 200)) if fast else ((1, 2, 4, 6, 8), (100, 150, 166, 175, 200))
    figure7 = figure7_scaling(core_counts=grid[0], frequencies_mhz=grid[1],
                              warmup_s=warmup, measure_s=measure)
    rows7 = []
    for cores, series in sorted(figure7.items()):
        rows7.append([cores] + [gbps for _f, gbps in series])
    sections.append(format_table(
        ["Cores \\ MHz"] + [str(f) for f in grid[1]],
        rows7,
        title=f"Figure 7: UDP Gb/s vs frequency (Ethernet duplex limit "
              f"{figure7_ethernet_limit():.2f} Gb/s)",
    ))
    from repro.analysis.report import ascii_chart

    limit = figure7_ethernet_limit()
    chart_series = {
        f"{cores} cores": series for cores, series in sorted(figure7.items())
    }
    chart_series["limit"] = [(grid[1][0], limit), (grid[1][-1], limit)]
    sections.append(ascii_chart(
        "Figure 7 (rendered)", chart_series, x_label="MHz", y_label="Gb/s"
    ))

    figure8 = figure8_frame_sizes(warmup_s=warmup, measure_s=measure)
    rows8 = []
    for index, (payload, limit) in enumerate(figure8["ethernet_limit"]):
        rows8.append([
            payload, limit,
            figure8["software_200mhz"][index][1],
            figure8["rmw_166mhz"][index][1],
        ])
    sections.append(format_table(
        ["UDP bytes", "Ethernet limit", "Software @200", "RMW @166 (Gb/s)"],
        rows8,
        title="Figure 8: throughput vs datagram size",
    ))
    rates = saturation_frame_rates(100, warmup_s=warmup, measure_s=measure)
    sections.append(
        f"saturation frame rates: software {rates['software_200mhz'] / 1e6:.2f} M/s, "
        f"RMW {rates['rmw_166mhz'] / 1e6:.2f} M/s (paper: ~2.2 M/s both)"
    )

    elapsed = time.time() - started
    header = (
        "Reproduction of 'An Efficient Programmable 10 Gigabit Ethernet "
        "Network Interface Card' (HPCA 2005)\n"
        f"full evaluation regenerated in {elapsed:.1f} s"
        + (" (fast mode)" if fast else "")
    )
    return "\n\n".join([header] + sections)
