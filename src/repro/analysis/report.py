"""Plain-text rendering for tables and figure series."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table (benchmarks print these)."""
    materialized: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(
    name: str,
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure curve as aligned (x, y) pairs."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in points:
        lines.append(f"  {_fmt(x):>10}  {_fmt(y):>10}")
    return "\n".join(lines)


def ascii_chart(
    name: str,
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) curves as a terminal scatter chart.

    Each series gets a marker character; points map onto a
    ``width`` x ``height`` grid spanning the data's bounding box.  Used
    by the examples to show Figure 7/8-style curves without plotting
    dependencies.
    """
    markers = "ox+*#@%&"
    points = [(x, y) for curve in series.values() for x, y in curve]
    if not points:
        return f"{name}\n(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, curve) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in curve:
            column = round((x - x_min) / x_span * (width - 1))
            row = height - 1 - round((y - y_min) / y_span * (height - 1))
            grid[row][column] = marker

    lines = [name]
    lines.append(f"{_fmt(y_max):>10} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{_fmt(y_min):>10} ┤" + "".join(grid[-1]))
    lines.append(" " * 12 + "└" + "─" * width)
    lines.append(
        " " * 12 + f"{_fmt(x_min)}"
        + " " * max(1, width - len(_fmt(x_min)) - len(_fmt(x_max)))
        + f"{_fmt(x_max)}   ({x_label} -> {y_label})"
    )
    legend = "   ".join(
        f"{markers[i % len(markers)]} {label}" for i, label in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
