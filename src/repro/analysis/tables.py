"""Generators for the paper's tables (1-6)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.firmware.kernels import capture_trace
from repro.firmware.profiles import IDEAL_PROFILES, ideal_frame_totals
from repro.ilp import (
    BranchModel,
    IlpConfig,
    IssueOrder,
    PipelineModel,
    analyze_trace,
)
from repro.net.ethernet import (
    EthernetTiming,
    MAX_FRAME_BYTES,
    control_bandwidth_required_bps,
    control_mips_required,
)
from repro.nic.config import NicConfig, RMW_166MHZ, SOFTWARE_200MHZ
from repro.nic.throughput import ThroughputResult, ThroughputSimulator
from repro.units import to_gbps

SEND_FUNCTIONS = ("fetch_send_bd", "send_frame", "send_dispatch_ordering", "send_locking")
RECV_FUNCTIONS = ("fetch_recv_bd", "recv_frame", "recv_dispatch_ordering", "recv_locking")

FUNCTION_LABELS = {
    "fetch_send_bd": "Fetch Send BD",
    "send_frame": "Send Frame",
    "send_dispatch_ordering": "Send Dispatch and Ordering",
    "send_locking": "Send Locking",
    "fetch_recv_bd": "Fetch Receive BD",
    "recv_frame": "Receive Frame",
    "recv_dispatch_ordering": "Receive Dispatch and Ordering",
    "recv_locking": "Receive Locking",
}

_DEFAULT_WARMUP_S = 0.4e-3
_DEFAULT_MEASURE_S = 1.0e-3


def _run(config: NicConfig, payload: int = 1472,
         warmup_s: float = _DEFAULT_WARMUP_S,
         measure_s: float = _DEFAULT_MEASURE_S) -> ThroughputResult:
    return ThroughputSimulator(config, payload).run(warmup_s, measure_s)


# ----------------------------------------------------------------------
# Table 1 — ideal per-frame instruction and data-access counts
# ----------------------------------------------------------------------
def table1_ideal_profile() -> Dict[str, Dict[str, float]]:
    """Per-frame ideal costs plus the Section 2.1 line-rate arithmetic."""
    timing = EthernetTiming()
    rows: Dict[str, Dict[str, float]] = {}
    for key, profile in IDEAL_PROFILES.items():
        rows[FUNCTION_LABELS[key]] = {
            "instructions": profile.instructions,
            "data_accesses": profile.accesses,
        }
    totals = ideal_frame_totals()
    rows["(derived) line-rate MIPS"] = {
        "send": control_mips_required(totals["send_instructions"], 0.0),
        "receive": control_mips_required(0.0, totals["recv_instructions"]),
        "total": control_mips_required(
            totals["send_instructions"], totals["recv_instructions"]
        ),
    }
    rows["(derived) control bandwidth Gb/s"] = {
        "total": to_gbps(
            control_bandwidth_required_bps(
                totals["send_accesses"], totals["recv_accesses"]
            )
        ),
    }
    rows["(derived) frames per second per direction"] = {
        "fps": timing.frames_per_second(MAX_FRAME_BYTES),
    }
    rows["(derived) frame data bandwidth Gb/s"] = {
        "total": to_gbps(timing.frame_data_bandwidth_bps(MAX_FRAME_BYTES)),
    }
    return rows


# ----------------------------------------------------------------------
# Table 2 — theoretical peak IPC of the firmware trace
# ----------------------------------------------------------------------
def table2_ilp_limits(iterations: int = 4) -> List[Dict[str, object]]:
    """IPC limit rows: one per (issue order, width) pair."""
    trace = capture_trace("order_sw", iterations=iterations)
    rows: List[Dict[str, object]] = []
    for order in (IssueOrder.IN_ORDER, IssueOrder.OUT_OF_ORDER):
        for width in (1, 2, 4):
            row: Dict[str, object] = {
                "order": "IO" if order is IssueOrder.IN_ORDER else "OOO",
                "width": width,
            }
            for pipeline, pipe_name in (
                (PipelineModel.PERFECT, "perfect"),
                (PipelineModel.STALLS, "stalls"),
            ):
                for branch, bp_name in (
                    (BranchModel.PBP, "pbp"),
                    (BranchModel.PBP1, "pbp1"),
                    (BranchModel.NOBP, "nobp"),
                ):
                    config = IlpConfig(order, width, pipeline, branch)
                    row[f"{pipe_name}/{bp_name}"] = analyze_trace(trace, config)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table 3 — IPC breakdown per core
# ----------------------------------------------------------------------
def table3_ipc_breakdown(
    config: Optional[NicConfig] = None,
    result: Optional[ThroughputResult] = None,
) -> Dict[str, float]:
    """Cycle breakdown at the paper's 6 x 200 MHz operating point."""
    if result is None:
        if config is None:
            config = SOFTWARE_200MHZ
        result = _run(config)
    breakdown = result.ipc_breakdown()
    breakdown["total"] = sum(breakdown.values())
    return breakdown


# ----------------------------------------------------------------------
# Table 4 — memory bandwidth required / peak / consumed
# ----------------------------------------------------------------------
def table4_bandwidth(
    config: Optional[NicConfig] = None,
    result: Optional[ThroughputResult] = None,
) -> Dict[str, Dict[str, float]]:
    if result is None:
        if config is None:
            config = SOFTWARE_200MHZ
        result = _run(config)
    report = result.bandwidth_report()
    totals = ideal_frame_totals()
    required_control = to_gbps(
        control_bandwidth_required_bps(totals["send_accesses"], totals["recv_accesses"])
    )
    timing = EthernetTiming()
    required_frame = to_gbps(timing.frame_data_bandwidth_bps(result.frame_bytes))
    return {
        "Instruction Memory": {
            "required": 0.0,  # negligible — the paper marks this N/A
            "peak": report["imem_peak_gbps"],
            "consumed": report["imem_consumed_gbps"],
        },
        "Scratchpads": {
            "required": required_control,
            "peak": report["scratchpad_peak_gbps"],
            "consumed": report["scratchpad_consumed_gbps"],
        },
        "Frame Memory": {
            "required": required_frame,
            "peak": report["frame_memory_peak_gbps"],
            "consumed": report["frame_memory_consumed_gbps"],
        },
    }


# ----------------------------------------------------------------------
# Tables 5 and 6 — software-only vs RMW-enhanced execution profiles
# ----------------------------------------------------------------------
def _per_frame_stats(result: ThroughputResult) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for name in SEND_FUNCTIONS:
        frames = max(1, result.tx_frames)
        stats = result.function_stats[name]
        rows[name] = {
            "instructions": stats.instructions / frames,
            "accesses": stats.accesses / frames,
            "cycles": stats.cycles / frames,
        }
    for name in RECV_FUNCTIONS:
        frames = max(1, result.rx_frames)
        stats = result.function_stats[name]
        rows[name] = {
            "instructions": stats.instructions / frames,
            "accesses": stats.accesses / frames,
            "cycles": stats.cycles / frames,
        }
    return rows


def table5_rmw_profiles(
    software_result: Optional[ThroughputResult] = None,
    rmw_result: Optional[ThroughputResult] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-packet instructions/accesses: ideal vs software vs RMW."""
    if software_result is None:
        software_result = _run(SOFTWARE_200MHZ)
    if rmw_result is None:
        rmw_result = _run(RMW_166MHZ)
    ideal = {
        name: {
            "instructions": profile.instructions,
            "accesses": profile.accesses,
        }
        for name, profile in IDEAL_PROFILES.items()
    }
    return {
        "ideal": ideal,
        "software": _per_frame_stats(software_result),
        "rmw": _per_frame_stats(rmw_result),
    }


def table6_cycles(
    software_result: Optional[ThroughputResult] = None,
    rmw_result: Optional[ThroughputResult] = None,
) -> Dict[str, Dict[str, float]]:
    """Cycles per packet per function for the two line-rate configs."""
    if software_result is None:
        software_result = _run(SOFTWARE_200MHZ)
    if rmw_result is None:
        rmw_result = _run(RMW_166MHZ)
    software = _per_frame_stats(software_result)
    rmw = _per_frame_stats(rmw_result)
    rows: Dict[str, Dict[str, float]] = {}
    for name in SEND_FUNCTIONS + RECV_FUNCTIONS:
        rows[name] = {
            "software_cycles": software[name]["cycles"],
            "rmw_cycles": rmw[name]["cycles"],
        }
    rows["send_total"] = {
        "software_cycles": sum(software[f]["cycles"] for f in SEND_FUNCTIONS),
        "rmw_cycles": sum(rmw[f]["cycles"] for f in SEND_FUNCTIONS),
    }
    rows["recv_total"] = {
        "software_cycles": sum(software[f]["cycles"] for f in RECV_FUNCTIONS),
        "rmw_cycles": sum(rmw[f]["cycles"] for f in RECV_FUNCTIONS),
    }
    return rows


def rmw_reductions(table5: Dict[str, Dict[str, Dict[str, float]]]) -> Dict[str, float]:
    """Headline percentages: ordering/dispatch savings from the RMW ops."""
    software = table5["software"]
    rmw = table5["rmw"]

    def reduction(metric: str, fn: str) -> float:
        before = software[fn][metric]
        after = rmw[fn][metric]
        return 100.0 * (1.0 - after / before) if before else 0.0

    return {
        "send_ordering_instructions_pct": reduction(
            "instructions", "send_dispatch_ordering"
        ),
        "recv_ordering_instructions_pct": reduction(
            "instructions", "recv_dispatch_ordering"
        ),
        "send_ordering_accesses_pct": reduction("accesses", "send_dispatch_ordering"),
        "recv_ordering_accesses_pct": reduction("accesses", "recv_dispatch_ordering"),
    }
