"""Generators for the paper's measured figures (7 and 8).

All sweep surfaces run through the experiment engine
(:mod:`repro.exp`): points fan out across ``jobs`` worker processes and
hit the content-addressed cache when one is configured (``cache_dir``
argument, or the ``REPRO_SWEEP_JOBS`` / ``REPRO_CACHE_DIR`` environment
knobs for callers that cannot pass arguments, like the benchmark
drivers).  Serial, uncached runs produce numerically identical results
to the pre-engine code: the engine executes the exact same
``ThroughputSimulator(config, payload).run(...)`` per point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.exp import RunSpec, WorkloadSpec, run_spec, run_specs
from repro.firmware.ordering import OrderingMode
from repro.net.ethernet import EthernetTiming
from repro.nic.config import NicConfig, RMW_166MHZ, SOFTWARE_200MHZ
from repro.units import mhz, to_gbps

_DEFAULT_WARMUP_S = 0.4e-3
_DEFAULT_MEASURE_S = 0.8e-3

# Figure 7's axes: the paper sweeps core frequency for 1-8 cores with
# the (software-ordered) frame-parallel firmware and 4 scratchpad banks.
FIGURE7_CORE_COUNTS = (1, 2, 4, 6, 8)
FIGURE7_FREQUENCIES_MHZ = (100, 125, 150, 166, 175, 200)

# Figure 8's x axis: UDP datagram sizes from tiny to maximum.
FIGURE8_UDP_SIZES = (18, 100, 200, 400, 800, 1200, 1472)


def figure7_scaling(
    core_counts: Sequence[int] = FIGURE7_CORE_COUNTS,
    frequencies_mhz: Sequence[float] = FIGURE7_FREQUENCIES_MHZ,
    ordering: OrderingMode = OrderingMode.SOFTWARE,
    warmup_s: float = _DEFAULT_WARMUP_S,
    measure_s: float = _DEFAULT_MEASURE_S,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[int, List[Tuple[float, float]]]:
    """UDP throughput (Gb/s) vs core frequency, one curve per core count.

    Maximum-sized UDP datagrams (1472 B), duplex saturation streams —
    exactly Figure 7's setup.  Returns {cores: [(MHz, Gb/s), ...]}.
    The whole grid fans out through the experiment engine.
    """
    points = [(cores, frequency)
              for cores in core_counts for frequency in frequencies_mhz]
    specs = [
        RunSpec(
            config=NicConfig(
                cores=cores,
                core_frequency_hz=mhz(frequency),
                ordering_mode=ordering,
            ),
            workload=WorkloadSpec(udp_payload_bytes=1472),
            warmup_s=warmup_s,
            measure_s=measure_s,
            label=f"fig7/{cores}c@{frequency:g}MHz",
        )
        for cores, frequency in points
    ]
    results = run_specs(specs, jobs=jobs, cache_dir=cache_dir, label="figure7")
    curves: Dict[int, List[Tuple[float, float]]] = {}
    for (cores, frequency), result in zip(points, results):
        curves.setdefault(cores, []).append(
            (frequency, result.udp_throughput_gbps)
        )
    return curves


def figure7_ethernet_limit() -> float:
    """The 'Ethernet Limit (Duplex)' reference line of Figure 7, Gb/s."""
    return to_gbps(EthernetTiming().duplex_payload_limit_bps(1472))


def single_core_line_rate_frequency(
    ordering: OrderingMode = OrderingMode.SOFTWARE,
    frequencies_mhz: Sequence[float] = (600, 700, 800, 900, 1000, 1100, 1200),
    target_fraction: float = 0.99,
    cache_dir: Optional[str] = None,
) -> Optional[float]:
    """Find the frequency one core needs for line rate (Section 6.1's
    "a single core would have to operate at 800 MHz").

    The search stays sequential (it early-exits at the crossover, so
    later points are never simulated), but each point goes through the
    engine so overlapping drivers share cached results."""
    for frequency in frequencies_mhz:
        spec = RunSpec(
            config=NicConfig(
                cores=1, core_frequency_hz=mhz(frequency), ordering_mode=ordering
            ),
            workload=WorkloadSpec(udp_payload_bytes=1472),
            warmup_s=_DEFAULT_WARMUP_S,
            measure_s=_DEFAULT_MEASURE_S,
            label=f"fig7-single/{frequency:g}MHz",
        )
        result = run_spec(spec, cache_dir=cache_dir)
        if result.line_rate_fraction() >= target_fraction:
            return frequency
    return None


def figure8_frame_sizes(
    udp_sizes: Sequence[int] = FIGURE8_UDP_SIZES,
    warmup_s: float = _DEFAULT_WARMUP_S,
    measure_s: float = _DEFAULT_MEASURE_S,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """Full-duplex throughput vs UDP datagram size for both line-rate
    configurations, plus the Ethernet duplex limit curve."""
    timing = EthernetTiming()
    curves: Dict[str, List[Tuple[int, float]]] = {
        "ethernet_limit": [],
        "software_200mhz": [],
        "rmw_166mhz": [],
    }
    named_configs = (
        ("software_200mhz", SOFTWARE_200MHZ),
        ("rmw_166mhz", RMW_166MHZ),
    )
    points = [(payload, key, config)
              for payload in udp_sizes for key, config in named_configs]
    specs = [
        RunSpec(
            config=config,
            workload=WorkloadSpec(udp_payload_bytes=payload),
            warmup_s=warmup_s,
            measure_s=measure_s,
            label=f"fig8/{key}/{payload}B",
        )
        for payload, key, config in points
    ]
    results = run_specs(specs, jobs=jobs, cache_dir=cache_dir, label="figure8")
    for payload in udp_sizes:
        curves["ethernet_limit"].append(
            (payload, to_gbps(timing.duplex_payload_limit_bps(payload)))
        )
    for (payload, key, _config), result in zip(points, results):
        curves[key].append((payload, result.udp_throughput_gbps))
    return curves


def saturation_frame_rates(
    udp_payload_bytes: int = 100,
    warmup_s: float = _DEFAULT_WARMUP_S,
    measure_s: float = _DEFAULT_MEASURE_S,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, float]:
    """Peak total frame rates in the processing-bound regime (the
    ~2.2 M frames/s saturation Figure 8's discussion reports)."""
    named_configs = (
        ("software_200mhz", SOFTWARE_200MHZ),
        ("rmw_166mhz", RMW_166MHZ),
    )
    specs = [
        RunSpec(
            config=config,
            workload=WorkloadSpec(udp_payload_bytes=udp_payload_bytes),
            warmup_s=warmup_s,
            measure_s=measure_s,
            label=f"saturation/{key}",
        )
        for key, config in named_configs
    ]
    results = run_specs(specs, jobs=jobs, cache_dir=cache_dir, label="saturation")
    return {
        key: result.total_fps
        for (key, _config), result in zip(named_configs, results)
    }
