"""The Figure 3 experiment: could coherent caches replace the scratchpad?

The paper gathers per-agent *frame metadata* access traces from the
6-core frame-parallel firmware (DMA assists merged into one trace, MAC
assists into another, to fit SMPCache's 8-cache limit) and replays them
through fully-associative LRU MESI caches with 16-byte lines, sweeping
the per-cache size from 16 B to 32 KB.  The result motivates the entire
partitioned memory design: the collective hit ratio plateaus near 55%
no matter how large the caches get, *not* because of invalidations
(fewer than 1% of writes invalidate another cache) but because frame
metadata has almost no reuse locality — each frame's metadata is
touched once per pipeline stage by a different agent, and hundreds of
frames are in flight between touches.

:class:`MetadataTraceGenerator` reproduces that access structure from
the firmware model's own constants:

* a frame's descriptor/command/status slots live in a ring of in-flight
  frame metadata (the ~100 KB working set the paper cites);
* each processing stage runs on an effectively arbitrary core (task
  migration), first-touching the previous stage's lines (coherence
  misses) and writing its own fresh lines (silent E->M upgrades);
* the hardware assists read command words and write completion status;
* a few hot shared words (queue/commit pointers) are read often and
  written rarely — the only source of genuine invalidations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from repro.mem.coherence import (
    CoherenceStats,
    TraceAccess,
    sweep_cache_sizes,
)

CORE_CACHES = 6
DMA_CACHE = 6
MAC_CACHE = 7
CACHE_COUNT = 8

LINE_BYTES = 16

# Metadata layout (byte addresses).  The in-flight ring dominates the
# ~100 KB working set of Section 2.3.
RING_FRAMES = 1024
SLOT_BYTES = 96                      # descriptor + command + status words
RING_BASE = 0x0000
HOT_BASE = RING_BASE + RING_FRAMES * SLOT_BYTES
HOT_WORDS = 16                       # queue heads, commit pointers, ring indices

# Figure 3's x axis.
FIGURE3_SIZES = (
    16, 32, 64, 128, 256, 512,
    1024, 2048, 4096, 8192, 16384, 32768,
)


def _mix(value: int) -> int:
    """Cheap deterministic hash for core assignment (task migration)."""
    value = (value * 2654435761) & 0xFFFFFFFF
    return (value >> 16) ^ (value & 0xFFFF)


@dataclass
class MetadataTraceGenerator:
    """Synthesizes the 8-agent metadata trace of the Figure 3 study."""

    frames: int = 800

    def _slot(self, seq: int) -> int:
        return RING_BASE + (seq % RING_FRAMES) * SLOT_BYTES

    def _hot_word(self, index: int) -> int:
        return HOT_BASE + (index % HOT_WORDS) * 4

    def generate(self) -> List[TraceAccess]:
        return list(self.accesses())

    def accesses(self) -> Iterator[TraceAccess]:
        """Yield the interleaved trace, frame by frame."""
        for seq in range(self.frames):
            slot = self._slot(seq)
            # Stage 1 — descriptor fetch: some core parses the newly
            # DMAed descriptors and builds the frame's command block.
            core_a = _mix(seq) % CORE_CACHES
            yield TraceAccess(core_a, self._hot_word(0), False)   # fetch pointer
            for word in range(4):                                 # descriptor words
                yield TraceAccess(core_a, slot + 4 * word, True)
            yield TraceAccess(core_a, slot + 16, True)            # command word 0
            yield TraceAccess(core_a, slot + 20, True)            # command word 1

            # DMA assist: reads the command block, writes its status.
            # (Hardware progress *registers* are device registers, not
            # cacheable metadata — the paper's trace filter drops them,
            # so they do not appear here.)
            yield TraceAccess(DMA_CACHE, slot + 16, False)
            yield TraceAccess(DMA_CACHE, slot + 20, False)
            yield TraceAccess(DMA_CACHE, slot + 32, True)         # DMA status
            yield TraceAccess(DMA_CACHE, slot + 36, True)

            # Stage 2 — frame processing on a (usually different) core:
            # reads the descriptor + DMA status, builds the MAC command.
            core_b = _mix(seq * 3 + 1) % CORE_CACHES
            yield TraceAccess(core_b, self._hot_word(1), False)   # event queue head
            yield TraceAccess(core_b, slot + 0, False)
            yield TraceAccess(core_b, slot + 4, False)
            yield TraceAccess(core_b, slot + 32, False)           # DMA status
            yield TraceAccess(core_b, slot + 48, True)            # MAC command
            yield TraceAccess(core_b, slot + 52, True)

            # MAC assist: reads the command, posts transmit status on
            # its own line of the slot.
            yield TraceAccess(MAC_CACHE, slot + 48, False)
            yield TraceAccess(MAC_CACHE, slot + 52, False)
            yield TraceAccess(MAC_CACHE, slot + 64, True)         # MAC status
            yield TraceAccess(MAC_CACHE, slot + 68, True)

            # Stage 3 — completion on a third core: ordering flags,
            # commit scan, host notification bookkeeping (fresh line).
            core_c = _mix(seq * 7 + 5) % CORE_CACHES
            yield TraceAccess(core_c, self._hot_word(2), False)
            yield TraceAccess(core_c, slot + 64, False)           # MAC status
            yield TraceAccess(core_c, slot + 80, True)            # done flag
            yield TraceAccess(core_c, slot + 84, True)            # completion BD
            if seq % 16 == 15:
                # Commit pass: advance the shared commit pointer once
                # per bundle — the rare genuinely-shared write.
                yield TraceAccess(core_c, self._hot_word(3), False)
                yield TraceAccess(core_c, self._hot_word(3), True)


def figure3_cache_study(
    frames: int = 800,
    sizes: Sequence[int] = FIGURE3_SIZES,
    line_bytes: int = LINE_BYTES,
) -> Dict[int, CoherenceStats]:
    """Sweep per-cache size; returns {size_bytes: CoherenceStats}."""
    trace = MetadataTraceGenerator(frames=frames).generate()
    return sweep_cache_sizes(trace, CACHE_COUNT, sizes, line_bytes)
