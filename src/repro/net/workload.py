"""Workload generators.

The paper's evaluation drives the NIC with simultaneous transmit and
receive streams of fixed-size UDP datagrams (Section 5: "the proposed
architecture is tested ... by simultaneously sending and receiving
Ethernet frames of various sizes").  Sends and receives are deliberately
*not* correlated, matching the paper's modeling choice.

:class:`UdpStreamWorkload` produces deterministic per-direction frame
streams; :class:`WorkloadShaper` turns a stream into arrival times at
either line rate (saturation tests) or a fixed offered load.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.net.ethernet import (
    EthernetTiming,
    MAX_UDP_PAYLOAD_BYTES,
    MIN_UDP_PAYLOAD_BYTES,
    frame_bytes_for_udp_payload,
)

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class FrameSizeModel:
    """Deterministic per-sequence frame sizes for one direction.

    The paper's experiments use uniform sizes (:class:`ConstantSize`);
    :class:`ImixSize` adds the classic Internet-mix pattern as an
    extension, exercising the same code paths with realistic variance.

    The aggregate properties (``mean_payload_bytes``, ``max_frame_bytes``,
    ...) are memoized on first access: sizes are immutable once a model
    is constructed, and the hot paths — the MAC receiver's offered-frame
    arithmetic and the fabric's pacing clocks — read them per frame, so
    the O(pattern_length) pattern walk must not repeat per access.
    ``mean_wire_bytes`` memoizes per :class:`EthernetTiming` (frozen,
    hashable); subclasses overriding the underlying ``payload_bytes``
    after construction would be a bug, not a supported pattern.
    """

    #: True when sizes are a pure function of ``seq % pattern_length``
    #: (constant and pattern mixes), enabling the vectorized window
    #: reads below.  Models that learn sizes on the fly — the fabric's
    #: ``RecordedSizeModel`` only knows a frame's size once the wire
    #: delivers it — must leave this False so batched consumers never
    #: read a size that does not exist yet.
    supports_batch = False

    def payload_bytes(self, seq: int) -> int:
        raise NotImplementedError

    def frame_bytes(self, seq: int) -> int:
        return frame_bytes_for_udp_payload(self.payload_bytes(seq))

    def _pattern_cache(self, key: str, scalar) -> "list":
        cached = self.__dict__.get(key)
        if cached is None:
            values = [scalar(i) for i in range(self.pattern_length)]
            cached = (
                _np.asarray(values, dtype=_np.int64)
                if _np is not None else values
            )
            self.__dict__[key] = cached
        return cached

    def payload_bytes_array(self, start: int, count: int):
        """Payload sizes for ``seq in [start, start + count)``.

        Exact per-sequence values computed through the *same* scalar
        functions (tiled by ``seq % pattern_length``), returned as a
        numpy ``int64`` array when numpy is available and a list
        otherwise.  Only meaningful when :attr:`supports_batch` is True.
        """
        pattern = self._pattern_cache("_payload_pattern", self.payload_bytes)
        return _tile_pattern(pattern, self.pattern_length, start, count)

    def frame_bytes_array(self, start: int, count: int):
        """Frame sizes for ``seq in [start, start + count)`` (see above)."""
        pattern = self._pattern_cache("_frame_pattern", self.frame_bytes)
        return _tile_pattern(pattern, self.pattern_length, start, count)

    @property
    def pattern_length(self) -> int:
        return 1

    @property
    def mean_payload_bytes(self) -> float:
        cached = self.__dict__.get("_mean_payload_bytes")
        if cached is None:
            n = self.pattern_length
            cached = sum(self.payload_bytes(i) for i in range(n)) / n
            self.__dict__["_mean_payload_bytes"] = cached
        return cached

    @property
    def mean_frame_bytes(self) -> float:
        cached = self.__dict__.get("_mean_frame_bytes")
        if cached is None:
            n = self.pattern_length
            cached = sum(self.frame_bytes(i) for i in range(n)) / n
            self.__dict__["_mean_frame_bytes"] = cached
        return cached

    @property
    def max_frame_bytes(self) -> int:
        cached = self.__dict__.get("_max_frame_bytes")
        if cached is None:
            cached = max(self.frame_bytes(i) for i in range(self.pattern_length))
            self.__dict__["_max_frame_bytes"] = cached
        return cached

    def mean_wire_bytes(self, timing: "EthernetTiming") -> float:
        cache = self.__dict__.setdefault("_mean_wire_bytes", {})
        cached = cache.get(timing)
        if cached is None:
            n = self.pattern_length
            cached = sum(
                timing.wire_bytes(self.frame_bytes(i)) for i in range(n)
            ) / n
            cache[timing] = cached
        return cached

    def line_rate_fps(self, timing: "EthernetTiming") -> float:
        """Back-to-back frame rate of this mix in one direction."""
        return timing.link_bits_per_second / (8 * self.mean_wire_bytes(timing))


def _tile_pattern(pattern, length: int, start: int, count: int):
    """Read ``count`` entries of a repeating pattern starting at ``start``."""
    if _np is not None:
        if length == 1:
            return _np.full(count, int(pattern[0]), dtype=_np.int64)
        indices = (start + _np.arange(count, dtype=_np.int64)) % length
        return pattern[indices]
    return [pattern[(start + k) % length] for k in range(count)]


class ConstantSize(FrameSizeModel):
    """Every frame carries the same UDP payload (the paper's setup)."""

    supports_batch = True

    def __init__(self, udp_payload_bytes: int) -> None:
        # Validate once via the conversion.
        frame_bytes_for_udp_payload(udp_payload_bytes)
        self._payload = udp_payload_bytes

    def payload_bytes(self, seq: int) -> int:
        return self._payload


class ImixSize(FrameSizeModel):
    """The classic 7:4:1 Internet mix (64 B : 594 B : 1518 B frames).

    Sizes repeat in a fixed interleaved pattern so runs stay
    deterministic; custom ``pattern`` entries are (udp_payload, count)
    pairs.
    """

    DEFAULT_PATTERN = ((18, 7), (548, 4), (1472, 1))

    supports_batch = True

    def __init__(self, pattern=DEFAULT_PATTERN) -> None:
        if not pattern:
            raise ValueError("pattern must be non-empty")
        expanded = []
        for payload, count in pattern:
            frame_bytes_for_udp_payload(payload)
            if count < 1:
                raise ValueError("pattern counts must be positive")
            expanded.extend([payload] * count)
        # Interleave deterministically so large frames spread out: walk
        # the sorted sizes with a stride coprime to the pattern length
        # (a fixed permutation, so every entry appears exactly once).
        import math

        expanded.sort()
        length = len(expanded)
        stride = max(1, length // 3)
        while math.gcd(stride, length) != 1:
            stride += 1
        self._sizes = [expanded[(i * stride) % length] for i in range(length)]

    def payload_bytes(self, seq: int) -> int:
        return self._sizes[seq % len(self._sizes)]

    @property
    def pattern_length(self) -> int:
        return len(self._sizes)


@dataclass(frozen=True)
class FrameSpec:
    """One frame's identity within a workload stream."""

    sequence: int
    udp_payload_bytes: int
    frame_bytes: int
    direction: str  # "tx" (host -> network) or "rx" (network -> host)

    def __post_init__(self) -> None:
        if self.direction not in ("tx", "rx"):
            raise ValueError(f"direction must be 'tx' or 'rx', got {self.direction!r}")


@dataclass
class UdpStreamWorkload:
    """A fixed-size UDP datagram stream in one direction.

    ``udp_payload_bytes`` spans the x-axis of Figure 8 (18 B minimum
    through the 1472 B maximum used for Figure 7).
    """

    udp_payload_bytes: int
    direction: str
    name: str = ""

    def __post_init__(self) -> None:
        if self.direction not in ("tx", "rx"):
            raise ValueError(f"direction must be 'tx' or 'rx', got {self.direction!r}")
        if not MIN_UDP_PAYLOAD_BYTES <= self.udp_payload_bytes <= MAX_UDP_PAYLOAD_BYTES:
            raise ValueError(
                f"UDP payload {self.udp_payload_bytes} outside "
                f"[{MIN_UDP_PAYLOAD_BYTES}, {MAX_UDP_PAYLOAD_BYTES}]"
            )
        if not self.name:
            self.name = f"udp{self.udp_payload_bytes}-{self.direction}"

    @property
    def frame_bytes(self) -> int:
        return frame_bytes_for_udp_payload(self.udp_payload_bytes)

    def frames(self) -> Iterator[FrameSpec]:
        """Endless deterministic stream of frame specs."""
        frame_size = self.frame_bytes
        for sequence in itertools.count():
            yield FrameSpec(
                sequence=sequence,
                udp_payload_bytes=self.udp_payload_bytes,
                frame_bytes=frame_size,
                direction=self.direction,
            )


@dataclass
class WorkloadShaper:
    """Assigns arrival instants to a workload's frames.

    ``offered_fraction_of_line_rate`` of 1.0 is a saturation test: every
    frame arrives back to back at exactly the link's frame time.  Lower
    fractions space arrivals proportionally (used to find the knee of
    the throughput curves without overload).
    """

    workload: UdpStreamWorkload
    timing: EthernetTiming = field(default_factory=EthernetTiming)
    offered_fraction_of_line_rate: float = 1.0
    start_ps: int = 0

    def __post_init__(self) -> None:
        if self.offered_fraction_of_line_rate <= 0:
            raise ValueError("offered load must be positive")
        if self.offered_fraction_of_line_rate > 1.0:
            raise ValueError("cannot offer more than line rate on a physical link")

    @property
    def interarrival_ps(self) -> int:
        wire_time = self.timing.frame_time_ps(self.workload.frame_bytes)
        return round(wire_time / self.offered_fraction_of_line_rate)

    def arrivals(self) -> Iterator[tuple]:
        """Yield ``(arrival_time_ps, FrameSpec)`` pairs, endlessly."""
        gap = self.interarrival_ps
        for spec in self.workload.frames():
            yield self.start_ps + spec.sequence * gap, spec

    def offered_fps(self) -> float:
        """Offered frame rate for this direction."""
        line = self.timing.frames_per_second(self.workload.frame_bytes)
        return line * self.offered_fraction_of_line_rate


def duplex_saturation_workload(udp_payload_bytes: int) -> tuple:
    """Convenience: matched tx and rx saturation streams (the standard
    experiment setup for Figures 7 and 8)."""
    tx = UdpStreamWorkload(udp_payload_bytes, "tx")
    rx = UdpStreamWorkload(udp_payload_bytes, "rx")
    return WorkloadShaper(tx), WorkloadShaper(rx)
