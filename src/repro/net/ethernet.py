"""Ethernet frame geometry and 10 Gb/s line-rate arithmetic.

This module encodes the closed-form requirements analysis of the paper's
Section 2.1:

* a full-duplex 10 Gb/s link delivers maximum-sized (1518 B) frames at
  812,744 frames per second *in each direction*;
* sending + receiving at that rate needs 435 MIPS of control processing
  and 4.8 Gb/s of control-data bandwidth;
* frame contents cross the NIC's local frame memory twice per direction,
  requiring 39.5 Gb/s — slightly under 4 x 10 Gb/s because nothing is
  transferred during the preamble and interframe gap.

Frame layout on the wire (no VLAN tag, as in the paper)::

    preamble+SFD (8) | dst(6) src(6) type(2) | payload | CRC (4) | IFG (12)

The Ethernet header (14 B) + IP header (20 B) + UDP header (8 B) = 42 B of
headers, which is why a 1472 B UDP datagram yields a 1518 B frame and why
the paper's transmit path DMAs a 42 B header region separately from the
payload region.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import gbps, transfer_time_ps

PREAMBLE_BYTES = 8  # preamble (7) + start-of-frame delimiter (1)
INTERFRAME_GAP_BYTES = 12
ETHERNET_HEADER_BYTES = 14
ETHERNET_CRC_BYTES = 4
IP_HEADER_BYTES = 20
UDP_HEADER_BYTES = 8
PROTOCOL_HEADER_BYTES = ETHERNET_HEADER_BYTES + IP_HEADER_BYTES + UDP_HEADER_BYTES  # 42

MIN_FRAME_BYTES = 64
MAX_FRAME_BYTES = 1518
MIN_UDP_PAYLOAD_BYTES = MIN_FRAME_BYTES - PROTOCOL_HEADER_BYTES - ETHERNET_CRC_BYTES  # 18
MAX_UDP_PAYLOAD_BYTES = MAX_FRAME_BYTES - PROTOCOL_HEADER_BYTES - ETHERNET_CRC_BYTES  # 1472

# The transmit path fetches each frame as two discontiguous host regions:
# the 42 B protocol header and the payload (Section 2.1).
TX_HEADER_REGION_BYTES = PROTOCOL_HEADER_BYTES


def frame_bytes_for_udp_payload(udp_payload_bytes: int) -> int:
    """Wire frame size (excluding preamble/IFG) for a UDP datagram.

    Frames below the Ethernet minimum are padded to 64 B, exactly as a
    real MAC would.
    """
    if udp_payload_bytes < 0:
        raise ValueError(f"payload must be non-negative, got {udp_payload_bytes}")
    if udp_payload_bytes > MAX_UDP_PAYLOAD_BYTES:
        raise ValueError(
            f"payload {udp_payload_bytes} exceeds the maximum "
            f"{MAX_UDP_PAYLOAD_BYTES} for an untagged 1518 B frame"
        )
    raw = udp_payload_bytes + PROTOCOL_HEADER_BYTES + ETHERNET_CRC_BYTES
    return max(raw, MIN_FRAME_BYTES)


def udp_payload_for_frame_bytes(frame_bytes: int) -> int:
    """Inverse of :func:`frame_bytes_for_udp_payload` for unpadded frames."""
    if not MIN_FRAME_BYTES <= frame_bytes <= MAX_FRAME_BYTES:
        raise ValueError(
            f"frame size {frame_bytes} outside [{MIN_FRAME_BYTES}, {MAX_FRAME_BYTES}]"
        )
    return frame_bytes - PROTOCOL_HEADER_BYTES - ETHERNET_CRC_BYTES


@dataclass(frozen=True)
class EthernetTiming:
    """Line-rate math for one direction of an Ethernet link."""

    link_bits_per_second: float = gbps(10)

    def wire_bytes(self, frame_bytes: int) -> int:
        """Bytes of link occupancy per frame, counting preamble and IFG."""
        return frame_bytes + PREAMBLE_BYTES + INTERFRAME_GAP_BYTES

    def frame_time_ps(self, frame_bytes: int) -> int:
        """Link occupancy time of one frame including preamble and IFG."""
        return transfer_time_ps(self.wire_bytes(frame_bytes), self.link_bits_per_second)

    def frames_per_second(self, frame_bytes: int) -> float:
        """Back-to-back frame rate in one direction.

        For 1518 B frames at 10 Gb/s this is the paper's 812,744 fps
        (1538 wire bytes per frame).
        """
        return self.link_bits_per_second / (self.wire_bytes(frame_bytes) * 8)

    def payload_throughput_bps(self, udp_payload_bytes: int) -> float:
        """UDP goodput of one saturated direction, in bits per second."""
        frame = frame_bytes_for_udp_payload(udp_payload_bytes)
        return self.frames_per_second(frame) * udp_payload_bytes * 8

    def duplex_payload_limit_bps(self, udp_payload_bytes: int) -> float:
        """The 'Ethernet Limit (Duplex)' curve of Figures 7 and 8."""
        return 2 * self.payload_throughput_bps(udp_payload_bytes)

    def frame_data_bandwidth_bps(self, frame_bytes: int) -> float:
        """Frame-memory bandwidth needed for full-duplex line rate.

        Every sent and every received frame is written once to and read
        once from the NIC's frame memory: 4 streams of frame bytes at the
        per-direction frame rate.  For maximum-sized frames this is the
        paper's 39.5 Gb/s (less than 40 Gb/s because preamble and IFG
        bytes never touch memory).
        """
        fps = self.frames_per_second(frame_bytes)
        return 4 * fps * frame_bytes * 8

    def utilization(self, achieved_fps: float, frame_bytes: int) -> float:
        """Fraction of one direction's line rate achieved."""
        limit = self.frames_per_second(frame_bytes)
        return achieved_fps / limit if limit else 0.0


def control_mips_required(
    instructions_per_sent_frame: float,
    instructions_per_received_frame: float,
    timing: EthernetTiming = EthernetTiming(),
    frame_bytes: int = MAX_FRAME_BYTES,
) -> float:
    """Total MIPS to sustain full-duplex line rate (paper: 435 MIPS)."""
    fps = timing.frames_per_second(frame_bytes)
    total = (instructions_per_sent_frame + instructions_per_received_frame) * fps
    return total / 1e6


def control_bandwidth_required_bps(
    accesses_per_sent_frame: float,
    accesses_per_received_frame: float,
    access_bytes: int = 4,
    timing: EthernetTiming = EthernetTiming(),
    frame_bytes: int = MAX_FRAME_BYTES,
) -> float:
    """Control-data bandwidth to sustain line rate (paper: 4.8 Gb/s)."""
    fps = timing.frames_per_second(frame_bytes)
    accesses = (accesses_per_sent_frame + accesses_per_received_frame) * fps
    return accesses * access_bytes * 8
