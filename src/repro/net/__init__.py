"""Ethernet link model and workload generators."""

from repro.net.ethernet import (
    ETHERNET_HEADER_BYTES,
    ETHERNET_CRC_BYTES,
    INTERFRAME_GAP_BYTES,
    MAX_FRAME_BYTES,
    MAX_UDP_PAYLOAD_BYTES,
    MIN_FRAME_BYTES,
    PREAMBLE_BYTES,
    EthernetTiming,
    frame_bytes_for_udp_payload,
    udp_payload_for_frame_bytes,
)
from repro.net.workload import FrameSpec, UdpStreamWorkload, WorkloadShaper

__all__ = [
    "ETHERNET_HEADER_BYTES",
    "ETHERNET_CRC_BYTES",
    "EthernetTiming",
    "FrameSpec",
    "INTERFRAME_GAP_BYTES",
    "MAX_FRAME_BYTES",
    "MAX_UDP_PAYLOAD_BYTES",
    "MIN_FRAME_BYTES",
    "PREAMBLE_BYTES",
    "UdpStreamWorkload",
    "WorkloadShaper",
    "frame_bytes_for_udp_payload",
    "udp_payload_for_frame_bytes",
]
