"""The :class:`FaultInjector` — runtime companion of a :class:`FaultPlan`.

The injector owns the per-axis decision indices (so the decision
stream is a pure function of the plan's seed and the *order* in which
a subsystem asks, never of wall-clock or shared RNG state), the
per-fault-kind counters that end up in
:attr:`~repro.nic.throughput.ThroughputResult.fault_counters`, and the
tracer instants on the ``faults`` track.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from repro.faults.plan import FaultPlan
from repro.obs import NULL_TRACER

#: Counter keys, in report order.  Fixed so two identically seeded runs
#: produce byte-identical counter dicts (and so tests can pin them).
FAULT_COUNTER_KEYS: Tuple[str, ...] = (
    "rx_fcs_drops",
    "sdram_faulty_transfers",
    "sdram_retries",
    "sdram_exhausted",
    "sdram_backoff_ps",
    "pci_stalls",
    "pci_stall_ps",
    "queue_overflows",
    "queue_deferrals",
    "queue_drops",
    "switch_tail_drops",
)

#: Cap on how many dropped RX sequence numbers we remember (for tests
#: and reports; the counters are exact regardless).
_MAX_RECORDED_DROPS = 64


class FaultInjector:
    """Seed-reproducible fault decisions plus degradation accounting."""

    def __init__(self, plan: FaultPlan, tracer=NULL_TRACER) -> None:
        self.plan = plan
        self.tracer = tracer
        self.counters: Dict[str, int] = {key: 0 for key in FAULT_COUNTER_KEYS}
        self.dropped_rx_seqs: List[int] = []
        self._stream_index: Dict[str, int] = defaultdict(int)

    # ------------------------------------------------------------------
    def _next_index(self, stream: str) -> int:
        index = self._stream_index[stream]
        self._stream_index[stream] = index + 1
        return index

    # ------------------------------------------------------------------
    # RX FCS/CRC corruption
    # ------------------------------------------------------------------
    def rx_fcs_corrupt(self, seq: int, now_ps: int) -> bool:
        """Decide whether RX frame ``seq`` arrives with a bad FCS."""
        if not self.plan.decide(self.plan.rx_fcs_rate, "rx_fcs", self._next_index("rx_fcs")):
            return False
        self.counters["rx_fcs_drops"] += 1
        if len(self.dropped_rx_seqs) < _MAX_RECORDED_DROPS:
            self.dropped_rx_seqs.append(seq)
        if self.tracer.enabled:
            self.tracer.instant("faults", "rx_fcs_drop", now_ps, seq=seq)
        return True

    # ------------------------------------------------------------------
    # SDRAM transfer errors (DMA path)
    # ------------------------------------------------------------------
    def sdram_plan(self, stream: str, now_ps: int) -> Tuple[int, bool]:
        """Plan one DMA burst's SDRAM fault behaviour.

        Returns ``(failures, exhausted)``: the number of *failing* burst
        attempts, and whether the retry budget ran out.  When not
        exhausted, the attempt after the last failure succeeds (so the
        engine issues ``failures`` wasted bursts plus one good one);
        when exhausted, all ``sdram_max_retries + 1`` attempts failed
        and the transfer completes flagged bad rather than wedging the
        pipeline.  Attempt outcomes are drawn independently so
        back-to-back retry failures stay ``rate**n``-rare.
        """
        rate = self.plan.sdram_error_rate
        if rate <= 0.0:
            return 0, False
        index = self._next_index(f"sdram:{stream}")
        budget = self.plan.sdram_max_retries
        failures = 0
        while failures <= budget and self.plan.decide(
            rate, f"sdram:{stream}:{index}", failures
        ):
            failures += 1
        exhausted = failures > budget
        if failures:
            retries = budget if exhausted else failures
            self.counters["sdram_faulty_transfers"] += 1
            self.counters["sdram_retries"] += retries
            if exhausted:
                self.counters["sdram_exhausted"] += 1
            if self.tracer.enabled:
                self.tracer.instant(
                    "faults",
                    "sdram_error",
                    now_ps,
                    stream=stream,
                    failures=failures,
                    exhausted=exhausted,
                )
        return failures, exhausted

    def sdram_backoff_ps(self, attempt: int) -> int:
        """Exponential backoff before retry ``attempt`` (0-based)."""
        backoff = self.plan.sdram_retry_backoff_ps << min(attempt, 16)
        self.counters["sdram_backoff_ps"] += backoff
        return backoff

    # ------------------------------------------------------------------
    # PCI read stalls
    # ------------------------------------------------------------------
    def pci_stall(self, now_ps: int) -> int:
        """Extra picoseconds (possibly 0) this PCI host phase stalls."""
        if not self.plan.decide(
            self.plan.pci_stall_rate, "pci", self._next_index("pci")
        ):
            return 0
        stall = self.plan.pci_stall_ps
        self.counters["pci_stalls"] += 1
        self.counters["pci_stall_ps"] += stall
        if self.tracer.enabled:
            self.tracer.instant("faults", "pci_stall", now_ps, stall_ps=stall)
        return stall

    # ------------------------------------------------------------------
    # Event-queue overflow
    # ------------------------------------------------------------------
    def note_queue_overflow(self, kind: str, now_ps: int) -> None:
        self.counters["queue_overflows"] += 1
        self.counters["queue_deferrals"] += 1
        if self.tracer.enabled:
            self.tracer.instant("faults", "queue_overflow", now_ps, kind=kind)

    def note_queue_drop(self, kind: str, now_ps: int) -> None:
        self.counters["queue_drops"] += 1
        if self.tracer.enabled:
            self.tracer.instant("faults", "queue_drop", now_ps, kind=kind)

    # ------------------------------------------------------------------
    # Fabric switch tail drops
    # ------------------------------------------------------------------
    def note_switch_drop(self, now_ps: int, port: int = 0) -> None:
        """Account a store-and-forward switch dropping a frame bound for
        this NIC's port (finite output queue, tail-drop policy).  The
        drop decision itself is deterministic queue arithmetic in
        :class:`repro.fabric.wire.FabricWire`; the injector only keeps
        the count alongside the other degradation counters."""
        self.counters["switch_tail_drops"] += 1
        if self.tracer.enabled:
            self.tracer.instant("faults", "switch_tail_drop", now_ps, port=port)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, int]:
        """Copy of the counters, in fixed key order."""
        return dict(self.counters)
