"""The :class:`FaultPlan` — a frozen, hashable fault schedule.

A plan is pure data: per-axis fault *rates* plus the recovery knobs
(retry budget, backoff, queue depth).  All randomness is derived from
``seed`` via keyed hashing at decision time (see
:meth:`FaultPlan.decide`), so

* two runs with the same plan make byte-identical fault decisions,
* decisions on one axis are independent of how many decisions another
  axis has made (each stream is keyed separately), and
* the plan can be embedded in an :class:`~repro.exp.spec.RunSpec` and
  content-hashed for the experiment engine's result cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

_TWO_64 = float(2**64)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault schedule for one simulation run.

    Rates are per-opportunity probabilities in ``[0, 1]``:

    ``rx_fcs_rate``
        Probability that a received frame carries a bad FCS/CRC and is
        dropped at the MAC, punching a sequence hole the firmware must
        resequence around.
    ``sdram_error_rate``
        Probability that a DMA burst's SDRAM transfer faults; the DMA
        assist retries with exponential backoff up to
        ``sdram_max_retries`` times before declaring the transfer
        exhausted (it still completes, flagged bad, so the pipeline
        never deadlocks on a lost completion).
    ``pci_stall_rate``
        Probability that a PCI host phase (read/write across the bus)
        stalls for ``pci_stall_ps`` before completing.
    ``event_queue_depth``
        When non-zero, caps the distributed event queue at this depth;
        pushes into a full queue are deferred by ``queue_retry_ps``
        (backpressure).  Re-issuable singleton events are dropped
        outright after ``queue_drop_after`` deferrals.
    """

    seed: int = 0
    rx_fcs_rate: float = 0.0
    sdram_error_rate: float = 0.0
    sdram_max_retries: int = 4
    sdram_retry_backoff_ps: int = 200_000
    pci_stall_rate: float = 0.0
    pci_stall_ps: int = 2_000_000
    event_queue_depth: int = 0
    queue_retry_ps: int = 1_000_000
    queue_drop_after: int = 8

    def __post_init__(self) -> None:
        for name in ("rx_fcs_rate", "sdram_error_rate", "pci_stall_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate!r}")
        if self.sdram_max_retries < 0:
            raise ValueError("sdram_max_retries must be >= 0")
        if self.sdram_retry_backoff_ps < 0:
            raise ValueError("sdram_retry_backoff_ps must be >= 0")
        if self.pci_stall_ps < 0:
            raise ValueError("pci_stall_ps must be >= 0")
        if self.event_queue_depth < 0:
            raise ValueError("event_queue_depth must be >= 0")
        if self.queue_retry_ps <= 0:
            raise ValueError("queue_retry_ps must be > 0")
        if self.queue_drop_after < 1:
            raise ValueError("queue_drop_after must be >= 1")

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """True when the plan can actually perturb a run."""
        return (
            self.rx_fcs_rate > 0.0
            or self.sdram_error_rate > 0.0
            or self.pci_stall_rate > 0.0
            or self.event_queue_depth > 0
        )

    # ------------------------------------------------------------------
    def uniform(self, axis: str, index: int) -> float:
        """Deterministic uniform draw in ``[0, 1)`` for one decision.

        Keyed on ``(seed, axis, index)`` so every fault stream is an
        independent, reproducible sequence regardless of simulator
        event interleaving.
        """
        digest = hashlib.blake2b(
            f"{self.seed}:{axis}:{index}".encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") / _TWO_64

    def decide(self, rate: float, axis: str, index: int) -> bool:
        """Does fault ``axis`` fire on its ``index``-th opportunity?"""
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        return self.uniform(axis, index) < rate
