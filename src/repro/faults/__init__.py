"""Deterministic fault-injection and recovery layer.

The paper's NIC has to sustain line rate while the firmware tolerates
the messy realities of a 10 Gb/s link: corrupted frames, stalled DMA
transfers, and full event rings.  This package makes those error paths
first-class in the reproduction:

* :class:`FaultPlan` — a frozen, content-hashable schedule of fault
  rates along four axes (RX FCS corruption, SDRAM transfer errors,
  PCI read stalls, event-queue overflow).  Because the plan is pure
  data, an :class:`~repro.exp.spec.RunSpec` carrying one still caches
  correctly in the experiment engine.
* :class:`FaultInjector` — the runtime companion: seed-reproducible
  per-event decisions (keyed hashes, not shared RNG state, so the
  decision stream is independent of simulator event interleaving),
  per-fault-kind counters, and tracer instants on a ``faults`` track.

Recovery lives in the subsystems the faults hit:
:class:`~repro.nic.throughput.ThroughputSimulator` punches sequence
holes past FCS-dropped frames so the ordering commit pointer never
wedges, :class:`~repro.assists.dma.DmaAssist` retries faulted SDRAM
bursts with bounded exponential backoff, and the distributed event
queue defers (or, for re-issuable singleton events, eventually drops)
work that cannot be enqueued.

With no plan attached the simulator takes none of these code paths and
its outputs stay byte-identical to the fault-free build.
"""

from repro.faults.injector import FAULT_COUNTER_KEYS, FaultInjector
from repro.faults.plan import FaultPlan

__all__ = [
    "FAULT_COUNTER_KEYS",
    "FaultInjector",
    "FaultPlan",
]
