"""Stateful flow endpoints: the traffic state machines of the fabric.

A :class:`FabricFrame` is the unit of correlation the single-NIC
harness lacks: it is created by a flow at the source host, posted into
that NIC's driver rings, tracked through transmit, wire/switch, and the
destination NIC's receive pipeline, and finally handed back to its flow
when the destination commits it to host memory — at which point the
flow may reply (closed-loop RPC) or simply account it (open-loop
stream).  Latency is measured host-to-host: from ``created_ps`` (the
source driver posting the frame) to the destination commit, so NIC
processing, wire time, switch queueing, and loss recovery all land in
the histogram, which is exactly the end-to-end number the paper's
throughput accounting cannot produce.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.ethernet import frame_bytes_for_udp_payload
from repro.net.workload import ConstantSize, ImixSize
from repro.fabric.spec import RpcFlowSpec, StreamFlowSpec
from repro.obs.hist import StreamingHistogram, exact_percentile

#: Latency-estimator modes a fabric can run with.  ``"streaming"`` (the
#: default) keeps one bounded-memory quantile sketch per flow —
#: O(buckets) state however many frames are delivered, percentiles
#: within :data:`LATENCY_SIGNIFICANT_DIGITS` significant digits.
#: ``"exact"`` keeps every sample (unbounded memory) and computes exact
#: nearest-rank percentiles — required wherever results must be
#: byte-identical across code versions (the golden-trace corpus).
ESTIMATORS = ("streaming", "exact")

#: Resolution of the streaming latency sketches: 3 significant digits
#: = 0.1% relative error on every reported percentile.
LATENCY_SIGNIFICANT_DIGITS = 3


@dataclass
class FabricFrame:
    """One correlated frame travelling between two fabric endpoints."""

    flow: str
    src: int
    dst: int
    udp_payload_bytes: int
    kind: str                     # "req" | "rsp" | "stream"
    request_id: int
    created_ps: int               # posted at the source host
    rtt_start_ps: int = 0         # original request post time (RPC)
    retransmits: int = 0
    #: DSCP-style traffic-class tag stamped by the posting flow when
    #: the fabric carries a :class:`~repro.qos.QosSpec` ("" = untagged;
    #: the legacy wire never reads these).
    qos_class: str = ""
    dscp: int = 0
    frame_bytes: int = field(init=False)

    def __post_init__(self) -> None:
        self.frame_bytes = frame_bytes_for_udp_payload(self.udp_payload_bytes)


# ``exact_percentile`` moved to :mod:`repro.obs.hist` (one nearest-rank
# implementation repo-wide); re-exported here for backward compatibility.


@dataclass
class LatencySummary:
    """Latency statistics, in microseconds.

    ``estimator`` records how the percentiles were computed:
    ``"exact"`` (nearest rank over every sample) or ``"streaming"``
    (bounded-memory sketch, within 10^-3 relative error; see
    :class:`repro.obs.hist.StreamingHistogram`).  ``count``, ``mean``,
    ``min`` and ``max`` are exact in both modes.  The field is
    deliberately excluded from :meth:`to_dict` so exact-mode result
    dicts stay byte-identical to the pre-streaming layout (golden
    corpus, cached sweep results).
    """

    count: int = 0
    mean_us: float = 0.0
    p50_us: float = 0.0
    p90_us: float = 0.0
    p99_us: float = 0.0
    p999_us: float = 0.0
    min_us: float = 0.0
    max_us: float = 0.0
    estimator: str = "exact"

    @staticmethod
    def from_samples_us(samples: List[float]) -> "LatencySummary":
        if not samples:
            return LatencySummary()
        ordered = sorted(samples)
        return LatencySummary(
            count=len(ordered),
            mean_us=sum(ordered) / len(ordered),
            p50_us=exact_percentile(ordered, 0.50),
            p90_us=exact_percentile(ordered, 0.90),
            p99_us=exact_percentile(ordered, 0.99),
            p999_us=exact_percentile(ordered, 0.999),
            min_us=ordered[0],
            max_us=ordered[-1],
        )

    @staticmethod
    def from_streaming(histogram: StreamingHistogram) -> "LatencySummary":
        """Summary of a bounded-memory sketch (percentiles within the
        sketch's documented relative-error bound)."""
        if histogram.total == 0:
            return LatencySummary(estimator="streaming")
        return LatencySummary(
            count=histogram.total,
            mean_us=histogram.mean,
            p50_us=histogram.percentile(0.50),
            p90_us=histogram.percentile(0.90),
            p99_us=histogram.percentile(0.99),
            p999_us=histogram.percentile(0.999),
            min_us=histogram.min if histogram.min is not None else 0.0,
            max_us=histogram.max if histogram.max is not None else 0.0,
            estimator="streaming",
        )

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
        }


#: Microsecond bucket bounds for the StatRegistry latency histograms
#: (metrics/Prometheus export; exact percentiles come from the samples).
LATENCY_BUCKETS_US = (
    1, 2, 4, 6, 8, 10, 15, 20, 30, 50, 75, 100, 150, 200, 300, 500,
    1000, 2000, 5000,
)


class FlowRuntime:
    """Common bookkeeping for one live flow.

    Latency state depends on the fabric's estimator mode: in the
    default ``"streaming"`` mode each flow holds one bounded-memory
    :class:`~repro.obs.hist.StreamingHistogram` per distribution
    (O(buckets) however long the run — the ROADMAP 2a requirement for
    million-flow fabrics), registered with the fabric's
    :class:`~repro.sim.stats.StatRegistry` so warm-up resets and sweep
    mergers see it.  In ``"exact"`` mode every sample is kept and the
    sample lists drive exact nearest-rank percentiles (golden-trace
    byte-identity).
    """

    kind = "flow"

    def __init__(self, fabric, name: str) -> None:
        self.fabric = fabric
        self.name = name
        self.streaming = fabric.estimator == "streaming"
        self.posted = 0
        self.delivered = 0
        self.lost = 0
        self.retransmitted = 0
        self.delivered_payload_bytes = 0
        self.oneway_samples_us: List[float] = []
        self.oneway_stream = (
            fabric.stats.streaming_histogram(
                f"flow.{name}.oneway_us", LATENCY_SIGNIFICANT_DIGITS
            )
            if self.streaming
            else None
        )
        self.oneway_histogram = fabric.stats.histogram(
            f"flow.{name}.oneway_us", LATENCY_BUCKETS_US
        )
        # (class name, dscp) stamped on every posted frame; assigned by
        # the fabric's QosRuntime after construction, None when the
        # fabric has no QoS config.
        self._qos_tag = None

    # -- window support -------------------------------------------------
    def window_snapshot(self) -> Dict[str, int]:
        return {
            "posted": self.posted,
            "delivered": self.delivered,
            "lost": self.lost,
            "retransmitted": self.retransmitted,
            "delivered_payload_bytes": self.delivered_payload_bytes,
            "oneway_index": len(self.oneway_samples_us),
        }

    def oneway_summary(self, since_index: int) -> LatencySummary:
        """Measured-window latency summary.

        Streaming mode reads the sketch (which the registry's
        warm-up ``reset_window(histograms=True)`` restarted at the
        window boundary); exact mode slices the sample list from the
        snapshot index.
        """
        if self.streaming:
            return LatencySummary.from_streaming(self.oneway_stream)
        return LatencySummary.from_samples_us(
            self.oneway_samples_us[since_index:]
        )

    # -- fabric callbacks -----------------------------------------------
    def start(self) -> None:
        raise NotImplementedError

    def on_delivered(self, frame: FabricFrame, now_ps: int) -> None:
        """Frame committed to host memory at its destination."""
        self.delivered += 1
        self.delivered_payload_bytes += frame.udp_payload_bytes
        oneway_us = (now_ps - frame.created_ps) / 1e6
        if self.streaming:
            self.oneway_stream.record(oneway_us)
        else:
            self.oneway_samples_us.append(oneway_us)
        self.oneway_histogram.record(oneway_us)

    def on_lost(self, frame: FabricFrame, now_ps: int) -> None:
        """Frame dropped in flight (switch tail-drop, MAC overrun, FCS)."""
        self.lost += 1

    # -- posting helper -------------------------------------------------
    def _post(self, frame: FabricFrame) -> None:
        tag = self._qos_tag
        if tag is not None:
            frame.qos_class, frame.dscp = tag
        self.posted += 1
        self.fabric.endpoints[frame.src].post_tx(frame)


class RpcFlowRuntime(FlowRuntime):
    """Closed-loop request/response state machine."""

    kind = "rpc"

    def __init__(self, fabric, name: str, spec: RpcFlowSpec) -> None:
        super().__init__(fabric, name)
        self.spec = spec
        self.completed = 0
        self.rtt_samples_us: List[float] = []
        self.rtt_stream = (
            fabric.stats.streaming_histogram(
                f"flow.{name}.rtt_us", LATENCY_SIGNIFICANT_DIGITS
            )
            if self.streaming
            else None
        )
        self.rtt_histogram = fabric.stats.histogram(
            f"flow.{name}.rtt_us", LATENCY_BUCKETS_US
        )
        self._next_id = 0

    def window_snapshot(self) -> Dict[str, int]:
        snap = super().window_snapshot()
        snap["completed"] = self.completed
        snap["rtt_index"] = len(self.rtt_samples_us)
        return snap

    def rtt_summary(self, since_index: int) -> LatencySummary:
        """Measured-window RTT summary (see :meth:`oneway_summary`)."""
        if self.streaming:
            return LatencySummary.from_streaming(self.rtt_stream)
        return LatencySummary.from_samples_us(
            self.rtt_samples_us[since_index:]
        )

    def start(self) -> None:
        for _ in range(self.spec.concurrency):
            self._issue_request()

    def _issue_request(self) -> None:
        now = self.fabric.sim.now_ps
        request_id = self._next_id
        self._next_id += 1
        self._post(
            FabricFrame(
                flow=self.name,
                src=self.spec.client,
                dst=self.spec.server,
                udp_payload_bytes=self.spec.request_payload_bytes,
                kind="req",
                request_id=request_id,
                created_ps=now,
                rtt_start_ps=now,
            )
        )

    def on_delivered(self, frame: FabricFrame, now_ps: int) -> None:
        super().on_delivered(frame, now_ps)
        if frame.kind == "req":
            # Server side: every delivered request immediately produces
            # its response (zero-cost application, so the measured RTT
            # is pure fabric + NIC pipeline time).
            self._post(
                FabricFrame(
                    flow=self.name,
                    src=self.spec.server,
                    dst=self.spec.client,
                    udp_payload_bytes=self.spec.response_payload_bytes,
                    kind="rsp",
                    request_id=frame.request_id,
                    created_ps=now_ps,
                    rtt_start_ps=frame.rtt_start_ps,
                )
            )
            return
        # Client side: one exchange completed.
        self.completed += 1
        rtt_us = (now_ps - frame.rtt_start_ps) / 1e6
        if self.streaming:
            self.rtt_stream.record(rtt_us)
        else:
            self.rtt_samples_us.append(rtt_us)
        self.rtt_histogram.record(rtt_us)
        if self.spec.think_ps:
            self.fabric.sim.schedule(self.spec.think_ps, self._issue_request)
        else:
            self._issue_request()

    def on_lost(self, frame: FabricFrame, now_ps: int) -> None:
        super().on_lost(frame, now_ps)
        # Retransmit from the original sender after the retry delay,
        # keeping the RTT clock running: loss costs latency, never a
        # wedged window.
        self.retransmitted += 1

        def resend(frame=frame) -> None:
            clone = FabricFrame(
                flow=frame.flow,
                src=frame.src,
                dst=frame.dst,
                udp_payload_bytes=frame.udp_payload_bytes,
                kind=frame.kind,
                request_id=frame.request_id,
                created_ps=self.fabric.sim.now_ps,
                rtt_start_ps=frame.rtt_start_ps,
                retransmits=frame.retransmits + 1,
            )
            self._post(clone)

        self.fabric.sim.schedule(self.spec.retry_delay_ps, resend)


class StreamFlowRuntime(FlowRuntime):
    """Open-loop paced bulk stream."""

    kind = "stream"

    def __init__(self, fabric, name: str, spec: StreamFlowSpec) -> None:
        super().__init__(fabric, name)
        self.spec = spec
        self.sizes = (
            ImixSize() if spec.imix else ConstantSize(spec.udp_payload_bytes)
        )
        self._seq = 0
        self._emit_ps = 0.0
        # PFC-style backpressure state: while paused the pacer defers
        # its batch instead of posting (open-loop pacing is the only
        # thing XOFF can stop; closed-loop RPC self-limits).
        self._paused = False
        self._deferred = False
        self.pause_count = 0
        # Fast path: the open-loop pacer is a textbook self-rescheduling
        # chain, so it runs on a heap-free ticket-faithful timer when
        # the fabric's batched mode is on (byte-identical ordering; see
        # repro.sim.batch.ChainedTimer).
        self._timer = (
            fabric.sim.batch.timer(self._post_batch, label=f"{name}-pacer")
            if getattr(fabric, "fast", False) else None
        )

    def start(self) -> None:
        self._post_batch()

    # -- PFC-style pause/backpressure -----------------------------------
    def qos_pause(self, now_ps: int) -> None:
        """Switch XOFF reached this stream's class: stop emitting."""
        if not self._paused:
            self._paused = True
            self.pause_count += 1

    def qos_resume(self, now_ps: int) -> None:
        """Switch XON: resume pacing.  The emission clock is clamped
        forward to *now* so the pacer does not burst to catch up on the
        paused interval (paused load is shed, not deferred-and-bursted
        — the PFC behavior the isolation ablation depends on)."""
        if not self._paused:
            return
        self._paused = False
        if self._deferred:
            self._deferred = False
            if self._emit_ps < now_ps:
                self._emit_ps = float(now_ps)
            when = round(self._emit_ps)
            if self._timer is not None:
                self._timer.arm(when)
            else:
                self.fabric.sim.schedule_at(when, self._post_batch)

    def _post_batch(self) -> None:
        if self._paused:
            # Batch deferred until XON; qos_resume re-arms the chain.
            self._deferred = True
            return
        timing = self.fabric.timing
        fraction = self.spec.offered_fraction
        for _ in range(self.spec.post_batch):
            seq = self._seq
            self._seq += 1
            payload = self.sizes.payload_bytes(seq)
            frame = FabricFrame(
                flow=self.name,
                src=self.spec.src,
                dst=self.spec.dst,
                udp_payload_bytes=payload,
                kind="stream",
                request_id=seq,
                created_ps=self.fabric.sim.now_ps,
            )
            self._post(frame)
            self._emit_ps += timing.frame_time_ps(frame.frame_bytes) / fraction
        # Open loop: the next batch posts at its own emission instant
        # regardless of what happened to this one.
        when = round(self._emit_ps)
        if self._timer is not None:
            self._timer.arm(when)
        else:
            self.fabric.sim.schedule_at(when, self._post_batch)


def build_runtimes(fabric) -> "Dict[str, FlowRuntime]":
    """Instantiate every flow state machine declared in the spec."""
    spec = fabric.spec
    names = iter(spec.flow_names())
    runtimes: Dict[str, FlowRuntime] = {}
    for flow in spec.rpc_flows:
        name = next(names)
        runtimes[name] = RpcFlowRuntime(fabric, name, flow)
    for flow in spec.stream_flows:
        name = next(names)
        runtimes[name] = StreamFlowRuntime(fabric, name, flow)
    return runtimes


__all__ = [
    "ESTIMATORS",
    "FabricFrame",
    "FlowRuntime",
    "LatencySummary",
    "LATENCY_BUCKETS_US",
    "LATENCY_SIGNIFICANT_DIGITS",
    "RpcFlowRuntime",
    "StreamFlowRuntime",
    "build_runtimes",
    "exact_percentile",
]
