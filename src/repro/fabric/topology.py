"""Composed multi-switch topologies: leaf-spine, fat-tree, and ECMP.

A :class:`TopologySpec` generalizes the fabric's single implicit switch
into an explicit graph: named switches, host attachment links, and
bidirectional switch↔switch links.  It is a frozen dataclass of
primitives, so it rides :class:`~repro.fabric.spec.FabricSpec` through
:func:`repro.exp.spec.describe` and content-hashes into experiment
cache keys exactly like the :class:`~repro.qos.QosSpec` does — and like
``qos``, the field is omitted at its ``None`` default so legacy specs
keep byte-identical keys and golden digests.

Routing is shortest-path with deterministic ECMP: a
:class:`TopologyRouter` BFS-labels the graph per destination switch and,
where several neighbors are equally close, picks the next hop with a
keyed blake2b draw over the flow tuple — byte-for-byte the decision
recipe of :meth:`repro.faults.FaultPlan.uniform` and
:func:`repro.qos.red.red_decide`, so path selection is reproducible,
independent of event interleaving, and identical on the batched
``--fast`` path.  The same hash shards the
:class:`~repro.fabric.flowtable.FlowTable`.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TopologySpec",
    "TopologyRouter",
    "ecmp_hash",
]


def ecmp_hash(seed: int, flow: str, src: int, dst: int, index: int = 0) -> int:
    """Deterministic 64-bit draw for one flow-tuple decision.

    The keyed blake2b recipe of :func:`repro.qos.red.keyed_uniform` /
    :meth:`repro.faults.FaultPlan.uniform`: a digest over
    ``"{seed}:{axis}:{index}"`` where the axis names the flow tuple and
    ``index`` counts that tuple's decisions (hop number for routing).
    Interleaving-independent by construction — the draw depends only on
    the spec-level identity of the decision, never on event order.
    """
    digest = hashlib.blake2b(
        f"{seed}:ecmp:{flow}:{src}:{dst}:{index}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class TopologySpec:
    """An explicit switch graph for the fabric wire.

    * ``switches`` — unique switch names (the graph's vertices).
    * ``host_links`` — ``(endpoint, switch)`` access links; every fabric
      endpoint must appear exactly once (checked against ``nics`` by
      :class:`~repro.fabric.spec.FabricSpec`).
    * ``switch_links`` — bidirectional switch↔switch links.
    * ``ecmp_seed`` — salts the keyed ECMP draws (and the flow-table
      shard hash) so two topologically identical fabrics can still make
      independent path choices.
    * ``flow_shards`` — shard count of the run's
      :class:`~repro.fabric.flowtable.FlowTable`.
    """

    switches: Tuple[str, ...] = ()
    host_links: Tuple[Tuple[int, str], ...] = ()
    switch_links: Tuple[Tuple[str, str], ...] = ()
    ecmp_seed: int = 0
    flow_shards: int = 8

    def __post_init__(self) -> None:
        if not self.switches:
            raise ValueError("topology needs at least one switch")
        if len(set(self.switches)) != len(self.switches):
            raise ValueError(f"switch names must be unique, got {self.switches}")
        known = set(self.switches)
        seen_endpoints = set()
        for endpoint, switch in self.host_links:
            if switch not in known:
                raise ValueError(
                    f"host link ({endpoint}, {switch!r}) references an "
                    f"unknown switch (have {sorted(known)})"
                )
            if endpoint < 0:
                raise ValueError(f"negative endpoint index {endpoint}")
            if endpoint in seen_endpoints:
                raise ValueError(f"endpoint {endpoint} attached twice")
            seen_endpoints.add(endpoint)
        if not seen_endpoints:
            raise ValueError("topology attaches no endpoints")
        seen_links = set()
        for a, b in self.switch_links:
            if a not in known or b not in known:
                raise ValueError(
                    f"switch link ({a!r}, {b!r}) references an unknown "
                    f"switch (have {sorted(known)})"
                )
            if a == b:
                raise ValueError(f"switch {a!r} linked to itself")
            pair = (a, b) if a <= b else (b, a)
            if pair in seen_links:
                raise ValueError(f"duplicate switch link {pair}")
            seen_links.add(pair)
        if self.flow_shards < 1:
            raise ValueError("flow_shards must be >= 1")
        self._check_connected()

    def _check_connected(self) -> None:
        """Every switch must be reachable from the first (a partitioned
        graph would leave some flow with no route)."""
        adjacency = self.adjacency()
        seen = {self.switches[0]}
        frontier = deque(seen)
        while frontier:
            at = frontier.popleft()
            for neighbor in adjacency[at]:
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        unreachable = set(self.switches) - seen
        if unreachable:
            raise ValueError(
                f"topology is partitioned: {sorted(unreachable)} "
                f"unreachable from {self.switches[0]!r}"
            )

    # ------------------------------------------------------------------
    def endpoints(self) -> Tuple[int, ...]:
        """Attached endpoint indices, sorted."""
        return tuple(sorted(endpoint for endpoint, _ in self.host_links))

    def switch_of(self, endpoint: int) -> str:
        for index, switch in self.host_links:
            if index == endpoint:
                return switch
        raise KeyError(f"endpoint {endpoint} not attached to the topology")

    def adjacency(self) -> Dict[str, Tuple[str, ...]]:
        """Switch → sorted neighbor tuple (sorted so the ECMP candidate
        order — and therefore every keyed path draw — is a pure function
        of the spec, not of link declaration order)."""
        neighbors: Dict[str, List[str]] = {name: [] for name in self.switches}
        for a, b in self.switch_links:
            neighbors[a].append(b)
            neighbors[b].append(a)
        return {name: tuple(sorted(links)) for name, links in neighbors.items()}

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    @staticmethod
    def leaf_spine(
        racks: int = 2,
        hosts_per_rack: int = 2,
        spines: int = 1,
        ecmp_seed: int = 0,
        flow_shards: int = 8,
    ) -> "TopologySpec":
        """A two-tier leaf-spine: ``racks`` leaves, each attaching
        ``hosts_per_rack`` consecutive endpoints, fully meshed to
        ``spines`` spines.  Host *i* lives on ``leaf{i // hosts_per_rack}``;
        cross-rack paths are leaf → spine → leaf with ``spines``-way ECMP.
        """
        if racks < 1 or hosts_per_rack < 1 or spines < 1:
            raise ValueError("leaf_spine needs racks, hosts, spines >= 1")
        leaves = tuple(f"leaf{r}" for r in range(racks))
        spine_names = tuple(f"spine{s}" for s in range(spines))
        host_links = tuple(
            (r * hosts_per_rack + h, f"leaf{r}")
            for r in range(racks)
            for h in range(hosts_per_rack)
        )
        switch_links = tuple(
            (leaf, spine) for leaf in leaves for spine in spine_names
        )
        return TopologySpec(
            switches=leaves + spine_names,
            host_links=host_links,
            switch_links=switch_links,
            ecmp_seed=ecmp_seed,
            flow_shards=flow_shards,
        )

    @staticmethod
    def fat_tree(
        k: int = 4, ecmp_seed: int = 0, flow_shards: int = 8
    ) -> "TopologySpec":
        """The canonical k-ary fat-tree (k even): k pods of k/2 edge and
        k/2 aggregation switches, (k/2)² cores, k³/4 hosts.  Edge *e* of
        pod *p* attaches hosts ``p·(k/2)² + e·(k/2) + [0, k/2)``;
        aggregation switch *a* of every pod uplinks to core group *a*.
        """
        if k < 2 or k % 2:
            raise ValueError("fat_tree needs an even k >= 2")
        half = k // 2
        switches: List[str] = []
        host_links: List[Tuple[int, str]] = []
        switch_links: List[Tuple[str, str]] = []
        for p in range(k):
            for e in range(half):
                edge = f"edge{p}_{e}"
                switches.append(edge)
                for s in range(half):
                    host_links.append((p * half * half + e * half + s, edge))
            for a in range(half):
                switches.append(f"agg{p}_{a}")
        for g in range(half):
            for c in range(half):
                switches.append(f"core{g}_{c}")
        for p in range(k):
            for e in range(half):
                for a in range(half):
                    switch_links.append((f"edge{p}_{e}", f"agg{p}_{a}"))
            for a in range(half):
                for c in range(half):
                    switch_links.append((f"agg{p}_{a}", f"core{a}_{c}"))
        return TopologySpec(
            switches=tuple(switches),
            host_links=tuple(host_links),
            switch_links=tuple(switch_links),
            ecmp_seed=ecmp_seed,
            flow_shards=flow_shards,
        )


class TopologyRouter:
    """Shortest-path ECMP routing over one :class:`TopologySpec`.

    Holds the mutable derived state a frozen spec cannot: BFS distance
    labels per destination switch, the hop-count bound, and a memo of
    resolved routes.  Two routers over equal specs resolve identical
    routes (the keyed draws depend only on spec content), so a route is
    a property of the experiment, not of the run.
    """

    def __init__(self, topology: TopologySpec) -> None:
        self.topology = topology
        self.adjacency = topology.adjacency()
        self._host_switch: Dict[int, str] = {
            endpoint: switch for endpoint, switch in topology.host_links
        }
        self._distances: Dict[str, Dict[str, int]] = {}
        self._routes: Dict[Tuple[str, int, int], Tuple[str, ...]] = {}
        self._ports: Dict[Tuple[str, int, int], Tuple[str, ...]] = {}
        self._hop_bound: Optional[int] = None

    # ------------------------------------------------------------------
    def distances_to(self, switch: str) -> Dict[str, int]:
        """BFS hop counts from every switch to ``switch`` (memoized)."""
        cached = self._distances.get(switch)
        if cached is not None:
            return cached
        dist = {switch: 0}
        frontier = deque((switch,))
        while frontier:
            at = frontier.popleft()
            for neighbor in self.adjacency[at]:
                if neighbor not in dist:
                    dist[neighbor] = dist[at] + 1
                    frontier.append(neighbor)
        self._distances[switch] = dist
        return dist

    def hop_bound(self) -> int:
        """Max switches on any shortest path between attached hosts —
        the bound the invariant monitor holds every resolved route to."""
        if self._hop_bound is None:
            attached = sorted(set(self._host_switch.values()))
            bound = 1
            for dst_switch in attached:
                dist = self.distances_to(dst_switch)
                bound = max(bound, max(dist[sw] for sw in attached) + 1)
            self._hop_bound = bound
        return self._hop_bound

    def next_hops(self, at: str, dst_switch: str) -> Tuple[str, ...]:
        """Equal-cost next hops from ``at`` toward ``dst_switch``, in
        the spec's canonical (sorted-neighbor) order."""
        dist = self.distances_to(dst_switch)
        want = dist[at] - 1
        return tuple(n for n in self.adjacency[at] if dist[n] == want)

    # ------------------------------------------------------------------
    def route(self, flow: str, src: int, dst: int) -> Tuple[str, ...]:
        """The switch path of ``(flow, src, dst)``: access switch of
        ``src`` through to the access switch of ``dst``, each equal-cost
        tie broken by :func:`ecmp_hash` at its hop index."""
        key = (flow, src, dst)
        cached = self._routes.get(key)
        if cached is not None:
            return cached
        at = self._host_switch[src]
        dst_switch = self._host_switch[dst]
        seed = self.topology.ecmp_seed
        path = [at]
        hop = 0
        while at != dst_switch:
            options = self.next_hops(at, dst_switch)
            at = options[ecmp_hash(seed, flow, src, dst, hop) % len(options)]
            path.append(at)
            hop += 1
        resolved = tuple(path)
        self._routes[key] = resolved
        return resolved

    def route_ports(self, flow: str, src: int, dst: int) -> Tuple[str, ...]:
        """The egress-port keys the flow tuple traverses, one per
        switch on its path: ``"leaf0->spine1"`` style inter-switch
        links, then the final ``"leaf1->h7"`` access link down to the
        destination host."""
        key = (flow, src, dst)
        cached = self._ports.get(key)
        if cached is not None:
            return cached
        path = self.route(flow, src, dst)
        ports = tuple(
            f"{path[i]}->{path[i + 1]}" for i in range(len(path) - 1)
        ) + (f"{path[-1]}->h{dst}",)
        self._ports[key] = ports
        return ports

    def flow_shard(self, flow: str, src: int, dst: int, shards: int) -> int:
        """Shard index of a flow tuple — the hop-0 ECMP draw reduced
        modulo the shard count, so the flow table partitions by the
        same keyed hash that routes."""
        return ecmp_hash(self.topology.ecmp_seed, flow, src, dst) % shards
