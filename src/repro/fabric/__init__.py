"""End-to-end network fabric: multi-NIC wire model and stateful flows.

A beyond-the-paper extension.  The paper (Section 5) evaluates one NIC
under uncorrelated transmit/receive streams; this package instantiates
N full :class:`~repro.nic.throughput.ThroughputSimulator`-grade NIC
models on a shared event kernel, connects them through a deterministic
wire/switch model (:mod:`repro.fabric.wire`), and drives them with
stateful flow endpoints (:mod:`repro.fabric.flows`) — closed-loop RPC
request/response flows and open-loop paced streams — so a frame
transmitted by one NIC becomes a *correlated* receive (and possibly a
reply) at another.

What it measures that the single-NIC harness cannot:

* per-flow end-to-end latency distributions (exact p50/p90/p99/p999),
  host post → remote host commit;
* RPC round-trip time under a closed-loop offered-load window,
  including loss-recovery tails;
* aggregate bidirectional goodput across the fabric, switch queueing
  and tail-drop loss under congestion.

See ``docs/fabric.md`` for the topology/flow/latency methodology and
the ``repro fabric`` CLI subcommand for JSON/CSV reports.
"""

from repro.fabric.endpoint import FabricMacReceiver, NicEndpoint, RecordedSizeModel
from repro.fabric.flows import (
    ESTIMATORS,
    FabricFrame,
    LATENCY_SIGNIFICANT_DIGITS,
    LatencySummary,
    exact_percentile,
)
from repro.fabric.flowtable import FlowRecord, FlowTable
from repro.fabric.sim import FabricResult, FabricSimulator, FlowResult
from repro.fabric.spec import FabricSpec, RpcFlowSpec, StreamFlowSpec
from repro.fabric.topology import TopologyRouter, TopologySpec, ecmp_hash
from repro.fabric.wire import FabricWire

__all__ = [
    "ESTIMATORS",
    "FabricFrame",
    "FabricMacReceiver",
    "FabricResult",
    "FabricSimulator",
    "FabricSpec",
    "FabricWire",
    "FlowRecord",
    "FlowResult",
    "FlowTable",
    "LATENCY_SIGNIFICANT_DIGITS",
    "LatencySummary",
    "NicEndpoint",
    "RecordedSizeModel",
    "RpcFlowSpec",
    "StreamFlowSpec",
    "TopologyRouter",
    "TopologySpec",
    "ecmp_hash",
    "exact_percentile",
]
