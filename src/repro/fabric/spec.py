"""Serializable descriptions of a multi-NIC fabric experiment.

Everything here is a frozen dataclass built from primitives, so a
:class:`FabricSpec` rides inside a :class:`repro.exp.spec.RunSpec`
(``fabric_spec`` field), canonicalizes through
:func:`repro.exp.spec.describe`, and content-hashes into the experiment
engine's cache keys exactly like the :class:`~repro.faults.FaultPlan`
does.  The live objects — endpoints, wires, flow state machines — are
built from these specs by :class:`repro.fabric.sim.FabricSimulator`.

Two flow families cover the latency workloads the single-NIC harness
cannot express:

* :class:`RpcFlowSpec` — a *closed-loop* request/response flow: the
  client keeps ``concurrency`` requests outstanding, the server turns
  each delivered request into a response, and every completed exchange
  immediately (after ``think_ps``) issues the next.  This is the
  PsPIN-style "time to completion under offered load" measurement:
  RTT percentiles under a fixed window of outstanding work.
* :class:`StreamFlowSpec` — an *open-loop* bulk stream paced at a
  fraction of line rate, built on the same
  :class:`~repro.net.workload.FrameSizeModel` family as the paper's
  saturation workloads (constant-size or the IMIX extension).  Streams
  provide background load for load-vs-latency sweeps and measure
  one-way delivery latency and loss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

from repro.net.ethernet import MAX_UDP_PAYLOAD_BYTES, MIN_UDP_PAYLOAD_BYTES
from repro.fabric.topology import TopologySpec
from repro.qos.spec import QosSpec


def _check_payload(value: int, what: str) -> None:
    if not MIN_UDP_PAYLOAD_BYTES <= value <= MAX_UDP_PAYLOAD_BYTES:
        raise ValueError(
            f"{what} {value} outside "
            f"[{MIN_UDP_PAYLOAD_BYTES}, {MAX_UDP_PAYLOAD_BYTES}]"
        )


@dataclass(frozen=True)
class RpcFlowSpec:
    """A closed-loop request/response flow between two endpoints.

    ``concurrency`` is the client's outstanding-request window (the
    closed-loop "load"); ``think_ps`` is client think time between a
    response landing and the next request being posted.  A lost request
    or response is retransmitted after ``retry_delay_ps`` with the
    original RTT clock still running, so loss shows up as latency tail,
    not as silently vanished samples.
    """

    client: int = 0
    server: int = 1
    request_payload_bytes: int = 64
    response_payload_bytes: int = 1472
    concurrency: int = 4
    think_ps: int = 0
    retry_delay_ps: int = 2_000_000  # 2 us
    name: str = ""
    #: Traffic-class assignment when the fabric carries a ``qos``
    #: config ("" = the spec's default class).  Omitted from
    #: :func:`~repro.exp.spec.describe` at its default so untagged
    #: flows hash exactly as before the QoS layer existed.
    qos_class: str = ""

    DESCRIBE_OMIT_DEFAULTS = ("qos_class",)

    def __post_init__(self) -> None:
        _check_payload(self.request_payload_bytes, "request payload")
        _check_payload(self.response_payload_bytes, "response payload")
        if self.concurrency < 1:
            raise ValueError("rpc concurrency must be >= 1")
        if self.think_ps < 0 or self.retry_delay_ps < 0:
            raise ValueError("rpc delays must be non-negative")


@dataclass(frozen=True)
class StreamFlowSpec:
    """An open-loop bulk stream paced at a fraction of line rate.

    ``imix`` switches the per-frame sizes to the
    :class:`~repro.net.workload.ImixSize` 7:4:1 pattern (then
    ``udp_payload_bytes`` is ignored).  Frames are posted to the source
    NIC in bursts of ``post_batch`` at the pacing clock, so offered
    load is exact at batch granularity while the simulation stays one
    wakeup per batch, not per frame.
    """

    src: int = 0
    dst: int = 1
    udp_payload_bytes: int = 1472
    offered_fraction: float = 1.0
    imix: bool = False
    post_batch: int = 8
    name: str = ""
    #: Traffic-class assignment (see :class:`RpcFlowSpec.qos_class`).
    qos_class: str = ""

    DESCRIBE_OMIT_DEFAULTS = ("qos_class",)

    def __post_init__(self) -> None:
        _check_payload(self.udp_payload_bytes, "stream payload")
        if not 0.0 < self.offered_fraction <= 1.0:
            raise ValueError("stream offered_fraction must be in (0, 1]")
        if self.post_batch < 1:
            raise ValueError("post_batch must be >= 1")


@dataclass(frozen=True)
class FabricSpec:
    """Topology plus traffic of one fabric experiment.

    ``nics`` endpoints are connected either by dedicated point-to-point
    links (``switch=False``; the idealized mesh) or through one
    store-and-forward switch with finite per-output-port queues and
    tail-drop (``switch=True``).  ``propagation_delay_ps`` is per hop:
    source→destination directly, or source→switch and switch→destination
    (so a switched path costs two propagations plus the
    store-and-forward serialization and ``switch_latency_ps``).

    ``seed`` salts the per-endpoint fault-injection seeds when a
    :class:`~repro.faults.FaultPlan` is attached (endpoint *i* runs with
    ``plan.seed + seed + i``); the fabric itself is fully deterministic
    with or without it.
    """

    nics: int = 2
    propagation_delay_ps: int = 1_000_000  # 1 us per hop
    switch: bool = False
    port_queue_frames: int = 64
    switch_latency_ps: int = 500_000  # 0.5 us forwarding decision
    rpc_flows: Tuple[RpcFlowSpec, ...] = ()
    stream_flows: Tuple[StreamFlowSpec, ...] = ()
    seed: int = 0
    #: Per-class queue management on the switch ports
    #: (:class:`~repro.qos.QosSpec`); ``None`` keeps the single
    #: FIFO + tail-drop ports — and every legacy cache key and golden
    #: digest — byte-identical.
    qos: Optional[QosSpec] = None
    #: Composed multi-switch graph (leaf-spine / fat-tree / explicit
    #: link list, :class:`~repro.fabric.topology.TopologySpec`);
    #: ``None`` keeps the single implicit switch — and every legacy
    #: cache key and golden digest — byte-identical.
    topology: Optional[TopologySpec] = None

    DESCRIBE_OMIT_DEFAULTS = ("qos", "topology")

    def __post_init__(self) -> None:
        if self.nics < 1:
            raise ValueError("fabric needs at least one NIC")
        if self.propagation_delay_ps < 0 or self.switch_latency_ps < 0:
            raise ValueError("fabric delays must be non-negative")
        if self.port_queue_frames < 1:
            raise ValueError("switch port queues must hold at least one frame")
        if not self.rpc_flows and not self.stream_flows:
            raise ValueError("fabric needs at least one flow")
        for flow in self.rpc_flows:
            for endpoint in (flow.client, flow.server):
                self._check_endpoint(endpoint, flow)
        for flow in self.stream_flows:
            for endpoint in (flow.src, flow.dst):
                self._check_endpoint(endpoint, flow)
        self._check_qos()
        self._check_topology()

    def _check_topology(self) -> None:
        if self.topology is None:
            return
        if not self.switch:
            raise ValueError(
                "a composed topology forwards through switches; set switch=True"
            )
        attached = set()
        for endpoint, switch in self.topology.host_links:
            if not 0 <= endpoint < self.nics:
                raise ValueError(
                    f"topology attaches endpoint {endpoint} outside the "
                    f"{self.nics}-NIC fabric"
                )
            attached.add(endpoint)
        missing = set(range(self.nics)) - attached
        if missing:
            raise ValueError(
                f"topology leaves endpoints {sorted(missing)} unattached"
            )

    def _check_qos(self) -> None:
        if self.qos is None:
            for flow in self.rpc_flows + self.stream_flows:
                if flow.qos_class:
                    raise ValueError(
                        f"flow {flow.name or flow!r} assigns qos_class "
                        f"{flow.qos_class!r} but the fabric has no qos config"
                    )
            return
        if not self.switch:
            raise ValueError(
                "qos schedules switch output ports; set switch=True"
            )
        names = set(self.qos.class_names())
        for flow in self.rpc_flows + self.stream_flows:
            if flow.qos_class and flow.qos_class not in names:
                raise ValueError(
                    f"flow {flow.name or flow!r} assigns unknown qos_class "
                    f"{flow.qos_class!r} (have {sorted(names)})"
                )

    def _check_endpoint(self, index: int, flow: object) -> None:
        if not 0 <= index < self.nics:
            raise ValueError(
                f"flow {flow!r} references endpoint {index} "
                f"outside the {self.nics}-NIC fabric"
            )

    # ------------------------------------------------------------------
    def flow_names(self) -> Tuple[str, ...]:
        """Resolved (defaulted, uniqueness-checked) flow names in order."""
        names = []
        for index, flow in enumerate(self.rpc_flows):
            names.append(flow.name or f"rpc{index}")
        for index, flow in enumerate(self.stream_flows):
            names.append(flow.name or f"stream{index}")
        if len(set(names)) != len(names):
            raise ValueError(f"flow names must be unique, got {names}")
        return tuple(names)

    def with_load(
        self,
        offered_fraction: float,
        flows: Optional[Sequence[str]] = None,
    ) -> "FabricSpec":
        """This fabric with stream flows' offered load replaced —
        the x-axis move of a load-vs-latency sweep
        (:meth:`repro.exp.sweep.Sweep.fabric_grid`).  ``flows``
        restricts the move to the named streams (resolved names, see
        :meth:`flow_names`), which is how
        :meth:`~repro.exp.sweep.Sweep.qos_grid` overloads only the
        best-effort lane while the guaranteed lane holds its load."""
        selected = None if flows is None else set(flows)
        if selected is not None:
            known = {
                flow.name or f"stream{index}"
                for index, flow in enumerate(self.stream_flows)
            }
            unknown = selected - known
            if unknown:
                raise ValueError(
                    f"with_load names unknown stream flows {sorted(unknown)} "
                    f"(have {sorted(known)})"
                )
        return replace(
            self,
            stream_flows=tuple(
                replace(flow, offered_fraction=float(offered_fraction))
                if selected is None or (flow.name or f"stream{index}") in selected
                else flow
                for index, flow in enumerate(self.stream_flows)
            ),
        )

    # ------------------------------------------------------------------
    # Convenience topologies
    # ------------------------------------------------------------------
    @staticmethod
    def rpc_pair(
        concurrency: int = 4,
        request_payload_bytes: int = 64,
        response_payload_bytes: int = 1472,
        propagation_delay_ps: int = 1_000_000,
        think_ps: int = 0,
        seed: int = 0,
    ) -> "FabricSpec":
        """The canonical 2-NIC closed-loop RPC experiment."""
        return FabricSpec(
            nics=2,
            propagation_delay_ps=propagation_delay_ps,
            rpc_flows=(
                RpcFlowSpec(
                    client=0,
                    server=1,
                    request_payload_bytes=request_payload_bytes,
                    response_payload_bytes=response_payload_bytes,
                    concurrency=concurrency,
                    think_ps=think_ps,
                    name="rpc0",
                ),
            ),
            seed=seed,
        )

    @staticmethod
    def loopback(
        udp_payload_bytes: int = 1472,
        offered_fraction: float = 1.0,
        propagation_delay_ps: int = 0,
    ) -> "FabricSpec":
        """One NIC streaming to itself — the overhead-benchmark and
        consistency-check topology (its NIC sees the same duplex load a
        bare :class:`~repro.nic.throughput.ThroughputSimulator` models)."""
        return FabricSpec(
            nics=1,
            propagation_delay_ps=propagation_delay_ps,
            stream_flows=(
                StreamFlowSpec(
                    src=0,
                    dst=0,
                    udp_payload_bytes=udp_payload_bytes,
                    offered_fraction=offered_fraction,
                    name="loop0",
                ),
            ),
        )
