"""The deterministic wire/switch model connecting fabric endpoints.

Two topologies, both pure integer-picosecond arithmetic (so two
identically configured runs are byte-identical):

* **Direct links** (``switch=False``): every source→destination pair
  has a dedicated link.  A frame's first bit reaches the destination
  MAC ``propagation_delay_ps`` after its first bit left the source
  MAC (``wire_start_ps``); serialization happens once, modeled by the
  receiving MAC.
* **Store-and-forward switch** (``switch=True``): the full frame must
  arrive at the switch (source ``wire_end_ps`` + propagation), pays
  ``switch_latency_ps`` for the forwarding decision, then contends for
  the destination's output port.  The port serializes frames
  back-to-back at line rate; at most ``port_queue_frames`` frames may
  be queued or in flight on a port — beyond that the newest arrival is
  *tail-dropped*, counted in :attr:`drops` and (when the destination
  NIC carries a fault injector) the ``switch_tail_drops`` fault
  counter, and reported to its flow as a loss.
"""

from __future__ import annotations

from typing import Deque, Dict, List
from collections import deque

from repro.assists.mac import WireEvent
from repro.check.monitor import NULL_MONITOR
from repro.fabric.flows import FabricFrame
from repro.fabric.spec import FabricSpec


class _SwitchPort:
    """Output-port state: serialization point plus occupancy queue."""

    __slots__ = ("free_ps", "departures")

    def __init__(self) -> None:
        self.free_ps = 0
        # Departure (end-of-serialization) times of frames that are
        # queued or currently serializing on this port.
        self.departures: Deque[int] = deque()

    def occupancy(self, now_ps: int) -> int:
        departures = self.departures
        while departures and departures[0] <= now_ps:
            departures.popleft()
        return len(departures)


class FabricWire:
    """Connects :class:`~repro.fabric.endpoint.NicEndpoint` instances."""

    def __init__(self, fabric, spec: FabricSpec) -> None:
        self.fabric = fabric
        self.spec = spec
        self.forwarded = 0
        self.drops = 0
        self._ports: List[_SwitchPort] = [_SwitchPort() for _ in range(spec.nics)]
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    # ------------------------------------------------------------------
    def transmit(self, src: int, frame: FabricFrame, wire: WireEvent) -> None:
        """Source NIC ``src`` put ``frame`` on the wire (``wire`` is its
        MAC timing).  Routes, queues, possibly drops, and ultimately
        schedules the destination's :meth:`rx_arrive`."""
        if self.monitor.enabled:
            self.monitor.wire_injected(self, src, frame.dst)
        if self.spec.switch:
            self._transmit_switched(src, frame, wire)
        else:
            self._deliver(frame, wire.wire_start_ps + self.spec.propagation_delay_ps,
                          wire.wire_start_ps)

    # -- direct links ---------------------------------------------------
    def _deliver(self, frame: FabricFrame, available_ps: int, span_start_ps: int) -> None:
        self.forwarded += 1
        if self.monitor.enabled:
            self.monitor.wire_forwarded(
                self, frame.src, frame.dst, available_ps, self.spec.switch
            )
        fabric = self.fabric
        destination = fabric.endpoints[frame.dst]

        def arrive(frame=frame, available_ps=available_ps) -> None:
            destination.rx_arrive(frame, available_ps)

        fabric.sim.schedule_at(available_ps, arrive)
        if fabric.tracer.enabled:
            fabric.tracer.complete(
                "fabric",
                f"{frame.flow}:{frame.kind}#{frame.request_id}",
                span_start_ps,
                max(0, available_ps - span_start_ps),
                src=frame.src,
                dst=frame.dst,
                bytes=frame.frame_bytes,
            )

    # -- store-and-forward switch ---------------------------------------
    def _transmit_switched(self, src: int, frame: FabricFrame, wire: WireEvent) -> None:
        spec = self.spec
        # Full frame at the switch, then the forwarding decision.
        ready_ps = wire.wire_end_ps + spec.propagation_delay_ps + spec.switch_latency_ps
        port = self._ports[frame.dst]
        if port.occupancy(ready_ps) >= spec.port_queue_frames:
            self.drops += 1
            if self.monitor.enabled:
                self.monitor.wire_dropped(self, frame.dst)
            fabric = self.fabric
            destination = fabric.endpoints[frame.dst]

            def drop(frame=frame, ready_ps=ready_ps, dst=frame.dst) -> None:
                if destination.faults is not None:
                    destination.faults.note_switch_drop(ready_ps, port=dst)
                elif fabric.tracer.enabled:
                    fabric.tracer.instant(
                        "fabric", "switch_tail_drop", ready_ps,
                        dst=dst, flow=frame.flow,
                    )
                fabric.frame_lost(frame, ready_ps, "switch_tail_drop")

            fabric.sim.schedule_at(ready_ps, drop)
            return
        out_start = max(ready_ps, port.free_ps)
        out_end = out_start + self.fabric.timing.frame_time_ps(frame.frame_bytes)
        if self.monitor.enabled:
            self.monitor.wire_port_departure(
                self, frame.dst, out_start, out_end, port.free_ps
            )
        port.free_ps = out_end
        port.departures.append(out_end)
        # The destination MAC re-serializes from the first bit leaving
        # the switch port: first bit at out_start + propagation.
        self._deliver(frame, out_start + spec.propagation_delay_ps, wire.wire_start_ps)

    # ------------------------------------------------------------------
    def window_snapshot(self) -> Dict[str, int]:
        return {"forwarded": self.forwarded, "drops": self.drops}
