"""The deterministic wire/switch model connecting fabric endpoints.

Two topologies, both pure integer-picosecond arithmetic (so two
identically configured runs are byte-identical):

* **Direct links** (``switch=False``): every source→destination pair
  has a dedicated link.  A frame's first bit reaches the destination
  MAC ``propagation_delay_ps`` after its first bit left the source
  MAC (``wire_start_ps``); serialization happens once, modeled by the
  receiving MAC.
* **Store-and-forward switch** (``switch=True``): the full frame must
  arrive at the switch (source ``wire_end_ps`` + propagation), pays
  ``switch_latency_ps`` for the forwarding decision, then contends for
  the destination's output port.  The port serializes frames
  back-to-back at line rate; at most ``port_queue_frames`` frames may
  be queued or in flight on a port — beyond that the newest arrival is
  *tail-dropped*, counted in :attr:`drops` and (when the destination
  NIC carries a fault injector) the ``switch_tail_drops`` fault
  counter, and reported to its flow as a loss.

With a :class:`~repro.qos.QosSpec` on the spec the switched ports grow
per-traffic-class queues (:class:`_QosPort`): arrivals are classified
by the DSCP-style tag their flow stamped on the frame, admitted
against the *class* queue capacity (tail-drop) and its optional RED
AQM (keyed, replayable drop decisions — see :mod:`repro.qos.red`),
and drained one frame per serialization slot by the port's pluggable
scheduler (strict priority / DRR / WRR, :mod:`repro.qos.sched`).
Crossing a class's XOFF watermark pauses the transmitting stream
pacers of that class PFC-style; draining to XON resumes them.  The
legacy single-FIFO arithmetic is untouched when ``qos is None``.

With a :class:`~repro.fabric.topology.TopologySpec` on the spec the
single implicit switch generalizes to a **graph** of store-and-forward
switches: every switch egress link owns its own serialization port
(the same :class:`_SwitchPort` — or :class:`_QosPort` when a QoS config
is present, so per-class queueing/RED/PFC compose per hop), frames
follow the deterministic keyed-blake2b ECMP route of their flow tuple
(:class:`~repro.fabric.topology.TopologyRouter`), and each hop pays
store-and-forward in full: the downstream switch sees the frame one
propagation after its serialization *end* on the upstream port — never
a reused source ``wire_end_ps`` stamp.  ``topology=None`` keeps both
legacy paths byte-identical.
"""

from __future__ import annotations

from typing import Deque, Dict, List, Optional
from collections import deque

from repro.assists.mac import WireEvent
from repro.check.monitor import NULL_MONITOR
from repro.fabric.flows import FabricFrame
from repro.fabric.spec import FabricSpec
from repro.fabric.topology import TopologyRouter
from repro.qos.red import red_decide, red_drop_probability
from repro.qos.sched import Scheduler, make_scheduler


class _SwitchPort:
    """Output-port state: serialization point plus occupancy queue."""

    __slots__ = ("free_ps", "departures")

    def __init__(self) -> None:
        self.free_ps = 0
        # Departure (end-of-serialization) times of frames that are
        # queued or currently serializing on this port.
        self.departures: Deque[int] = deque()

    def occupancy(self, now_ps: int) -> int:
        departures = self.departures
        while departures and departures[0] <= now_ps:
            departures.popleft()
        return len(departures)


class _QueuedFrame:
    """One frame parked in a class queue awaiting its serialization slot."""

    __slots__ = ("frame", "frame_bytes", "span_start_ps")

    def __init__(self, frame: FabricFrame, span_start_ps: int) -> None:
        self.frame = frame
        self.frame_bytes = frame.frame_bytes
        self.span_start_ps = span_start_ps


class _TopoQueuedFrame(_QueuedFrame):
    """A parked frame that still knows the rest of its route: a QoS
    port on a composed topology must forward a served frame to its next
    hop rather than always delivering it."""

    __slots__ = ("ports", "hop")

    def __init__(self, frame: FabricFrame, span_start_ps: int,
                 ports: tuple, hop: int) -> None:
        super().__init__(frame, span_start_ps)
        self.ports = ports
        self.hop = hop


class _QosPort:
    """Per-class queues + scheduler replacing one port's single FIFO.

    Unlike :class:`_SwitchPort` (whose analytic arithmetic resolves a
    frame's full port transit at transmit time), a QoS port is served
    event-by-event: the scheduler's pick for a serialization slot
    depends on which classes are backlogged *at that instant*, so the
    port runs a service chain — one event per frame at its
    serialization end — and ``busy`` marks a chain in flight.
    """

    __slots__ = (
        "index", "scheduler", "queues", "paused", "busy", "free_ps",
        "enqueued", "forwarded", "tail_drops", "red_drops",
        "pause_events", "resume_events", "red_index",
    )

    def __init__(self, index: int, scheduler: Scheduler, classes: int) -> None:
        self.index = index
        self.scheduler = scheduler
        self.queues: List[Deque[_QueuedFrame]] = [deque() for _ in range(classes)]
        self.paused: List[bool] = [False] * classes
        self.busy = False
        self.free_ps = 0
        self.enqueued = [0] * classes
        self.forwarded = [0] * classes
        self.tail_drops = [0] * classes
        self.red_drops = [0] * classes
        self.pause_events = [0] * classes
        self.resume_events = [0] * classes
        # Per-class RED decision indices: each (port, class) is an
        # independent keyed decision stream (repro.qos.red).
        self.red_index = [0] * classes

    def backlog(self) -> int:
        return sum(len(queue) for queue in self.queues)


class FabricWire:
    """Connects :class:`~repro.fabric.endpoint.NicEndpoint` instances."""

    def __init__(self, fabric, spec: FabricSpec) -> None:
        self.fabric = fabric
        self.spec = spec
        self.forwarded = 0
        self.drops = 0
        self._ports: List[_SwitchPort] = [_SwitchPort() for _ in range(spec.nics)]
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR
        #: Per-class queue management (``None`` = legacy single FIFO).
        self.qos = spec.qos
        self._qos_ports: List[_QosPort] = []
        self._class_index: Dict[str, int] = {}
        #: Composed multi-switch graph (``None`` = the legacy single
        #: implicit switch / direct links).
        self.topology = spec.topology
        self.router: Optional[TopologyRouter] = (
            TopologyRouter(spec.topology) if spec.topology is not None else None
        )
        # Per-egress-link ports, created lazily (a 1024-endpoint
        # leaf-spine declares thousands of access links; only the ones
        # traffic crosses pay for state).  Keys are the router's
        # ``"leaf0->spine1"`` / ``"leaf1->h7"`` port names.
        self._topo_ports: Dict[str, _SwitchPort] = {}
        self._topo_qos_ports: Dict[str, _QosPort] = {}
        #: Cumulative per-link [entered, forwarded, dropped] counters
        #: (topology mode only; the per-link conservation identity).
        self.link_counts: Dict[str, List[int]] = {}
        self._port_routes: Dict[tuple, tuple] = {}
        if self.qos is not None:
            classes = len(self.qos.classes)
            if self.topology is None:
                # One independent scheduler instance per output port.
                self._qos_ports = [
                    _QosPort(index, make_scheduler(self.qos), classes)
                    for index in range(spec.nics)
                ]
            self._class_index = {
                tc.name: index for index, tc in enumerate(self.qos.classes)
            }

    # ------------------------------------------------------------------
    def transmit(self, src: int, frame: FabricFrame, wire: WireEvent) -> None:
        """Source NIC ``src`` put ``frame`` on the wire (``wire`` is its
        MAC timing).  Routes, queues, possibly drops, and ultimately
        schedules the destination's :meth:`rx_arrive`."""
        if self.monitor.enabled:
            self.monitor.wire_injected(self, src, frame.dst)
        if self.topology is not None:
            self._transmit_topology(src, frame, wire)
        elif self.spec.switch:
            self._transmit_switched(src, frame, wire)
        else:
            self._deliver(frame, wire.wire_start_ps + self.spec.propagation_delay_ps,
                          wire.wire_start_ps)

    # -- direct links ---------------------------------------------------
    def _deliver(self, frame: FabricFrame, available_ps: int, span_start_ps: int) -> None:
        self.forwarded += 1
        if self.monitor.enabled:
            self.monitor.wire_forwarded(
                self, frame.src, frame.dst, available_ps, self.spec.switch
            )
        fabric = self.fabric
        destination = fabric.endpoints[frame.dst]

        def arrive(frame=frame, available_ps=available_ps) -> None:
            destination.rx_arrive(frame, available_ps)

        fabric.sim.schedule_at(available_ps, arrive)
        if fabric.tracer.enabled:
            fabric.tracer.complete(
                "fabric",
                f"{frame.flow}:{frame.kind}#{frame.request_id}",
                span_start_ps,
                max(0, available_ps - span_start_ps),
                src=frame.src,
                dst=frame.dst,
                bytes=frame.frame_bytes,
            )

    # -- store-and-forward switch ---------------------------------------
    def _transmit_switched(self, src: int, frame: FabricFrame, wire: WireEvent) -> None:
        if self.qos is not None:
            self._transmit_qos(frame, wire)
            return
        spec = self.spec
        # Full frame at the switch, then the forwarding decision.
        ready_ps = wire.wire_end_ps + spec.propagation_delay_ps + spec.switch_latency_ps
        port = self._ports[frame.dst]
        if port.occupancy(ready_ps) >= spec.port_queue_frames:
            self.drops += 1
            if self.monitor.enabled:
                self.monitor.wire_dropped(self, frame.dst)
            fabric = self.fabric
            destination = fabric.endpoints[frame.dst]

            def drop(frame=frame, ready_ps=ready_ps, dst=frame.dst) -> None:
                if destination.faults is not None:
                    destination.faults.note_switch_drop(ready_ps, port=dst)
                elif fabric.tracer.enabled:
                    fabric.tracer.instant(
                        "fabric", "switch_tail_drop", ready_ps,
                        dst=dst, flow=frame.flow,
                    )
                fabric.frame_lost(frame, ready_ps, "switch_tail_drop")

            fabric.sim.schedule_at(ready_ps, drop)
            return
        out_start = max(ready_ps, port.free_ps)
        out_end = out_start + self.fabric.timing.frame_time_ps(frame.frame_bytes)
        if self.monitor.enabled:
            self.monitor.wire_port_departure(
                self, frame.dst, out_start, out_end, port.free_ps
            )
        port.free_ps = out_end
        port.departures.append(out_end)
        # The destination MAC re-serializes from the first bit leaving
        # the switch port: first bit at out_start + propagation.
        self._deliver(frame, out_start + spec.propagation_delay_ps, wire.wire_start_ps)

    # -- per-class (QoS) switch ports -----------------------------------
    def _transmit_qos(self, frame: FabricFrame, wire: WireEvent) -> None:
        spec = self.spec
        ready_ps = wire.wire_end_ps + spec.propagation_delay_ps + spec.switch_latency_ps
        span_start_ps = wire.wire_start_ps
        if self.monitor.enabled:
            self.monitor.qos_injected(
                self, frame.dst, self._class_index[frame.qos_class]
            )

        # Admission and scheduling depend on queue state *at arrival*,
        # so the decision runs as its own event (the kernel orders
        # same-instant arrivals by schedule ticket — deterministic, and
        # identical on the --fast path).
        def arrive(frame=frame, ready_ps=ready_ps,
                   span_start_ps=span_start_ps) -> None:
            self._qos_arrive(frame, ready_ps, span_start_ps)

        self.fabric.sim.schedule_at(ready_ps, arrive)

    def _qos_arrive(self, frame: FabricFrame, now_ps: int,
                    span_start_ps: int) -> None:
        qos = self.qos
        port = self._qos_ports[frame.dst]
        cls = self._class_index[frame.qos_class]
        tc = qos.classes[cls]
        queue = port.queues[cls]
        occupancy = len(queue)
        if occupancy >= tc.queue_frames:
            self._qos_drop(port, cls, frame, now_ps, "switch_tail_drop")
            return
        if tc.red is not None:
            probability = red_drop_probability(occupancy, tc.red)
            if probability > 0.0:
                index = port.red_index[cls]
                port.red_index[cls] = index + 1
                if red_decide(qos.seed, port.index, tc.name, index, probability):
                    self._qos_drop(port, cls, frame, now_ps, "switch_red_drop")
                    return
        queue.append(_QueuedFrame(frame, span_start_ps))
        port.enqueued[cls] += 1
        if self.monitor.enabled:
            self.monitor.qos_enqueued(self, port.index, cls, len(queue))
        # PFC-style XOFF: crossing the watermark pauses this class's
        # transmitting stream pacers (zero-delay control message —
        # docs/qos.md documents the simplification).
        if (tc.pause_xoff_frames and not port.paused[cls]
                and len(queue) >= tc.pause_xoff_frames):
            port.paused[cls] = True
            port.pause_events[cls] += 1
            if self.monitor.enabled:
                self.monitor.qos_pause(self, port.index, cls, True)
            self.fabric.qos_pause(port.index, cls, now_ps)
        if not port.busy:
            port.busy = True
            self._qos_service(port)

    def _qos_drop(self, port: _QosPort, cls: int, frame: FabricFrame,
                  now_ps: int, reason: str) -> None:
        self.drops += 1
        if reason == "switch_tail_drop":
            port.tail_drops[cls] += 1
        else:
            port.red_drops[cls] += 1
        if self.monitor.enabled:
            self.monitor.qos_dropped(
                self, port.index, cls,
                "tail" if reason == "switch_tail_drop" else "red",
            )
            self.monitor.wire_dropped(self, frame.dst)
        fabric = self.fabric
        destination = fabric.endpoints[frame.dst]
        if reason == "switch_tail_drop" and destination.faults is not None:
            destination.faults.note_switch_drop(now_ps, port=frame.dst)
        elif fabric.tracer.enabled:
            fabric.tracer.instant(
                "fabric", reason, now_ps, dst=frame.dst, flow=frame.flow,
            )
        fabric.frame_lost(frame, now_ps, reason)

    def _qos_service(self, port: _QosPort) -> None:
        """Serve one serialization slot: the scheduler picks a class,
        the port serializes its head frame, and the chain re-arms at
        the frame's serialization end.  ``port.busy`` is True exactly
        while a chain is in flight, so arrivals during service only
        enqueue."""
        sim = self.fabric.sim
        now_ps = sim.now_ps
        cls = port.scheduler.select(port.queues)
        if cls is None:
            if self.monitor.enabled:
                # Work conservation: a scheduler may only go idle
                # against an empty backlog.
                self.monitor.qos_port_idle(self, port.index, port.backlog())
            port.busy = False
            return
        queue = port.queues[cls]
        entry = queue.popleft()
        out_start = now_ps if now_ps >= port.free_ps else port.free_ps
        out_end = out_start + self.fabric.timing.frame_time_ps(entry.frame_bytes)
        if self.monitor.enabled:
            self.monitor.qos_forwarded(self, port.index, cls, len(queue))
            self.monitor.wire_port_departure(
                self, port.index, out_start, out_end, port.free_ps
            )
        port.free_ps = out_end
        port.forwarded[cls] += 1
        # PFC-style XON: drained to the low watermark — resume pacers.
        tc = self.qos.classes[cls]
        if port.paused[cls] and len(queue) <= tc.pause_xon_frames:
            port.paused[cls] = False
            port.resume_events[cls] += 1
            if self.monitor.enabled:
                self.monitor.qos_pause(self, port.index, cls, False)
            self.fabric.qos_resume(port.index, cls, now_ps)
        self._deliver(
            entry.frame,
            out_start + self.spec.propagation_delay_ps,
            entry.span_start_ps,
        )

        def serve_next(port=port) -> None:
            self._qos_service(port)

        sim.schedule_at(out_end, serve_next)

    # -- composed topologies (graph of switches) ------------------------
    def route_ports(self, flow: str, src: int, dst: int) -> tuple:
        """The egress ports a flow tuple traverses (memoized).  The
        invariant monitor audits each route once, when first resolved:
        loop-free, within the topology's shortest-path hop bound, and
        never re-resolved differently."""
        key = (flow, src, dst)
        ports = self._port_routes.get(key)
        if ports is None:
            ports = self.router.route_ports(flow, src, dst)
            if self.monitor.enabled:
                self.monitor.topo_route(
                    self, flow, src, dst,
                    self.router.route(flow, src, dst),
                    self.router.hop_bound(),
                )
            self._port_routes[key] = ports
        return ports

    def _topo_port(self, key: str) -> _SwitchPort:
        port = self._topo_ports.get(key)
        if port is None:
            port = self._topo_ports[key] = _SwitchPort()
        return port

    def _topo_qos_port(self, key: str) -> _QosPort:
        port = self._topo_qos_ports.get(key)
        if port is None:
            port = _QosPort(key, make_scheduler(self.qos), len(self.qos.classes))
            self._topo_qos_ports[key] = port
        return port

    def _link(self, key: str) -> List[int]:
        counts = self.link_counts.get(key)
        if counts is None:
            counts = self.link_counts[key] = [0, 0, 0]
        return counts

    def _transmit_topology(self, src: int, frame: FabricFrame,
                           wire: WireEvent) -> None:
        ports = self.route_ports(frame.flow, src, frame.dst)
        # Store-and-forward at the access switch: the full frame is on
        # the wire at the source MAC's wire_end_ps, and lands one
        # propagation later.  Every subsequent hop re-derives its own
        # serialization end — the source stamp is never reused.
        self._topo_next(frame, ports, 0, wire.wire_end_ps, wire.wire_start_ps)

    def _topo_next(self, frame: FabricFrame, ports: tuple, index: int,
                   out_end_ps: int, span_start_ps: int) -> None:
        """Put ``frame`` in flight toward the switch owning
        ``ports[index]``: its last bit left the upstream serialization
        point at ``out_end_ps``, so the downstream switch holds the full
        frame one propagation later (store-and-forward per link)."""
        if self.monitor.enabled:
            self.monitor.topo_transit(self, 1)
        arrive_ps = out_end_ps + self.spec.propagation_delay_ps
        if self.qos is not None:
            # Classification/admission sees queue state at the instant
            # the forwarding decision completes, as on the single-switch
            # QoS path.
            when = arrive_ps + self.spec.switch_latency_ps

            def admit(frame=frame, ports=ports, index=index,
                      span_start_ps=span_start_ps) -> None:
                self._topo_qos_admit(frame, ports, index, span_start_ps)

            self.fabric.sim.schedule_at(when, admit)
            return

        def hop(frame=frame, ports=ports, index=index,
                span_start_ps=span_start_ps) -> None:
            self._topo_hop(frame, ports, index, span_start_ps)

        self.fabric.sim.schedule_at(arrive_ps, hop)

    def _topo_hop(self, frame: FabricFrame, ports: tuple, index: int,
                  span_start_ps: int) -> None:
        """One analytic store-and-forward hop, run at the frame's
        arrival-end instant: pay the forwarding latency, contend for the
        egress link's port, then deliver (last hop) or fly onward."""
        spec = self.spec
        key = ports[index]
        ready_ps = self.fabric.sim.now_ps + spec.switch_latency_ps
        port = self._topo_port(key)
        counts = self._link(key)
        counts[0] += 1
        if self.monitor.enabled:
            self.monitor.topo_transit(self, -1)
            self.monitor.topo_link_entered(self, key)
        if port.occupancy(ready_ps) >= spec.port_queue_frames:
            counts[2] += 1
            self.drops += 1
            if self.monitor.enabled:
                self.monitor.topo_link_dropped(self, key)
                self.monitor.wire_dropped(self, frame.dst)
            fabric = self.fabric
            destination = fabric.endpoints[frame.dst]

            def drop(frame=frame, ready_ps=ready_ps, key=key) -> None:
                if destination.faults is not None:
                    destination.faults.note_switch_drop(ready_ps, port=frame.dst)
                elif fabric.tracer.enabled:
                    fabric.tracer.instant(
                        "fabric", "switch_tail_drop", ready_ps,
                        dst=frame.dst, flow=frame.flow, link=key,
                    )
                fabric.frame_lost(frame, ready_ps, "switch_tail_drop")

            fabric.sim.schedule_at(ready_ps, drop)
            return
        out_start = max(ready_ps, port.free_ps)
        out_end = out_start + self.fabric.timing.frame_time_ps(frame.frame_bytes)
        if self.monitor.enabled:
            self.monitor.wire_port_departure(
                self, key, out_start, out_end, port.free_ps
            )
        port.free_ps = out_end
        port.departures.append(out_end)
        counts[1] += 1
        if self.monitor.enabled:
            self.monitor.topo_link_forwarded(self, key)
        if index == len(ports) - 1:
            # Final (access) link: the destination MAC re-serializes
            # from the first bit leaving the switch port, as on the
            # single-switch path.
            self._deliver(
                frame, out_start + spec.propagation_delay_ps, span_start_ps
            )
            return
        self._topo_next(frame, ports, index + 1, out_end, span_start_ps)

    def _topo_qos_admit(self, frame: FabricFrame, ports: tuple, index: int,
                        span_start_ps: int) -> None:
        """Per-hop classification/admission on a QoS graph port —
        the :meth:`_qos_arrive` logic keyed by egress link, with the
        keyed RED decision stream named after the link."""
        now_ps = self.fabric.sim.now_ps
        qos = self.qos
        key = ports[index]
        port = self._topo_qos_port(key)
        cls = self._class_index[frame.qos_class]
        tc = qos.classes[cls]
        counts = self._link(key)
        counts[0] += 1
        if self.monitor.enabled:
            self.monitor.topo_transit(self, -1)
            self.monitor.topo_link_entered(self, key)
            self.monitor.qos_injected(self, key, cls)
        queue = port.queues[cls]
        occupancy = len(queue)
        if occupancy >= tc.queue_frames:
            self._topo_qos_drop(port, cls, frame, now_ps, "switch_tail_drop")
            return
        if tc.red is not None:
            probability = red_drop_probability(occupancy, tc.red)
            if probability > 0.0:
                red_index = port.red_index[cls]
                port.red_index[cls] = red_index + 1
                if red_decide(qos.seed, port.index, tc.name, red_index,
                              probability):
                    self._topo_qos_drop(
                        port, cls, frame, now_ps, "switch_red_drop"
                    )
                    return
        queue.append(_TopoQueuedFrame(frame, span_start_ps, ports, index))
        port.enqueued[cls] += 1
        if self.monitor.enabled:
            self.monitor.qos_enqueued(self, key, cls, len(queue))
        if (tc.pause_xoff_frames and not port.paused[cls]
                and len(queue) >= tc.pause_xoff_frames):
            port.paused[cls] = True
            port.pause_events[cls] += 1
            if self.monitor.enabled:
                self.monitor.qos_pause(self, key, cls, True)
            self.fabric.qos_pause(port.index, cls, now_ps)
        if not port.busy:
            port.busy = True
            self._topo_qos_service(port)

    def _topo_qos_drop(self, port: _QosPort, cls: int, frame: FabricFrame,
                       now_ps: int, reason: str) -> None:
        key = port.index
        self._link(key)[2] += 1
        self.drops += 1
        if reason == "switch_tail_drop":
            port.tail_drops[cls] += 1
        else:
            port.red_drops[cls] += 1
        if self.monitor.enabled:
            self.monitor.topo_link_dropped(self, key)
            self.monitor.qos_dropped(
                self, key, cls,
                "tail" if reason == "switch_tail_drop" else "red",
            )
            self.monitor.wire_dropped(self, frame.dst)
        fabric = self.fabric
        destination = fabric.endpoints[frame.dst]
        if reason == "switch_tail_drop" and destination.faults is not None:
            destination.faults.note_switch_drop(now_ps, port=frame.dst)
        elif fabric.tracer.enabled:
            fabric.tracer.instant(
                "fabric", reason, now_ps, dst=frame.dst, flow=frame.flow,
                link=key,
            )
        fabric.frame_lost(frame, now_ps, reason)

    def _topo_qos_service(self, port: _QosPort) -> None:
        """One serialization slot on a QoS graph port: identical
        scheduler/pause arithmetic to :meth:`_qos_service`, but a served
        frame continues along its route instead of always delivering."""
        sim = self.fabric.sim
        now_ps = sim.now_ps
        cls = port.scheduler.select(port.queues)
        if cls is None:
            if self.monitor.enabled:
                self.monitor.qos_port_idle(self, port.index, port.backlog())
            port.busy = False
            return
        queue = port.queues[cls]
        entry = queue.popleft()
        out_start = now_ps if now_ps >= port.free_ps else port.free_ps
        out_end = out_start + self.fabric.timing.frame_time_ps(entry.frame_bytes)
        if self.monitor.enabled:
            self.monitor.qos_forwarded(self, port.index, cls, len(queue))
            self.monitor.wire_port_departure(
                self, port.index, out_start, out_end, port.free_ps
            )
        port.free_ps = out_end
        port.forwarded[cls] += 1
        self._link(port.index)[1] += 1
        if self.monitor.enabled:
            self.monitor.topo_link_forwarded(self, port.index)
        tc = self.qos.classes[cls]
        if port.paused[cls] and len(queue) <= tc.pause_xon_frames:
            port.paused[cls] = False
            port.resume_events[cls] += 1
            if self.monitor.enabled:
                self.monitor.qos_pause(self, port.index, cls, False)
            self.fabric.qos_resume(port.index, cls, now_ps)
        if entry.hop == len(entry.ports) - 1:
            self._deliver(
                entry.frame,
                out_start + self.spec.propagation_delay_ps,
                entry.span_start_ps,
            )
        else:
            self._topo_next(
                entry.frame, entry.ports, entry.hop + 1, out_end,
                entry.span_start_ps,
            )

        def serve_next(port=port) -> None:
            self._topo_qos_service(port)

        sim.schedule_at(out_end, serve_next)

    # ------------------------------------------------------------------
    def window_snapshot(self) -> Dict[str, int]:
        return {"forwarded": self.forwarded, "drops": self.drops}

    def qos_ports(self) -> List[_QosPort]:
        """Every live QoS port: the per-destination ports of the single
        implicit switch, or the per-egress-link ports of a composed
        topology (in deterministic link-name order)."""
        if self.topology is None:
            return self._qos_ports
        return [self._topo_qos_ports[key]
                for key in sorted(self._topo_qos_ports)]

    def topology_window_snapshot(self) -> Optional[Dict[str, List[int]]]:
        """Cumulative per-link [entered, forwarded, dropped] counters
        (``None`` without a topology); the measured window reports
        deltas."""
        if self.topology is None:
            return None
        return {key: list(counts) for key, counts in self.link_counts.items()}

    def qos_window_snapshot(self) -> Optional[Dict[str, List[int]]]:
        """Cumulative per-class counters summed across ports (``None``
        without a QoS config); the measured window reports deltas."""
        if self.qos is None:
            return None
        classes = len(self.qos.classes)
        totals = {
            key: [0] * classes
            for key in ("enqueued", "forwarded", "tail_drops", "red_drops",
                        "pause_events", "resume_events")
        }
        for port in self.qos_ports():
            for cls in range(classes):
                totals["enqueued"][cls] += port.enqueued[cls]
                totals["forwarded"][cls] += port.forwarded[cls]
                totals["tail_drops"][cls] += port.tail_drops[cls]
                totals["red_drops"][cls] += port.red_drops[cls]
                totals["pause_events"][cls] += port.pause_events[cls]
                totals["resume_events"][cls] += port.resume_events[cls]
        return totals
