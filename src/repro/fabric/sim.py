"""The fabric simulator: N NICs, one event kernel, correlated flows.

:class:`FabricSimulator` is the system-level counterpart of
:class:`~repro.nic.throughput.ThroughputSimulator`: it instantiates
``spec.nics`` full NIC models on a *shared* simulation kernel (each
with namespaced clock domains and, when tracing, a
:class:`~repro.obs.PrefixedTracer` track namespace), wires them through
the deterministic :class:`~repro.fabric.wire.FabricWire`, and drives
them with the flow state machines of :mod:`repro.fabric.flows`.

The measurement protocol mirrors the single-NIC one — run a warm-up
window, snapshot every accumulator, run the measurement window, report
deltas — so warm-up transients (cold descriptor rings, the first RPC
window filling) never pollute the latency distributions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.fabric.endpoint import NicEndpoint
from repro.fabric.flows import (
    ESTIMATORS,
    FabricFrame,
    FlowRuntime,
    LatencySummary,
    RpcFlowRuntime,
    build_runtimes,
)
from repro.fabric.flowtable import FlowTable
from repro.fabric.spec import FabricSpec
from repro.fabric.wire import FabricWire
from repro.faults import FaultPlan
from repro.host.rss import RssSpec
from repro.net.ethernet import EthernetTiming
from repro.nic.config import NicConfig
from repro.nic.throughput import ThroughputResult
from repro.obs import NULL_TRACER, PrefixedTracer
from repro.qos.runtime import QosRuntime
from repro.sim.kernel import Simulator
from repro.sim.stats import StatRegistry
from repro.units import ps_to_seconds


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass
class FlowResult:
    """Measured-window statistics of one flow."""

    name: str
    kind: str                      # "rpc" | "stream"
    delivered: int
    lost: int
    retransmits: int
    delivered_payload_bytes: int
    goodput_gbps: float
    oneway: LatencySummary
    completed: int = 0             # RPC exchanges finished (client side)
    rtt: Optional[LatencySummary] = None

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "kind": self.kind,
            "delivered": self.delivered,
            "lost": self.lost,
            "retransmits": self.retransmits,
            "delivered_payload_bytes": self.delivered_payload_bytes,
            "goodput_gbps": self.goodput_gbps,
            "oneway": self.oneway.to_dict(),
        }
        if self.rtt is not None:
            out["completed"] = self.completed
            out["rtt"] = self.rtt.to_dict()
        return out


@dataclass
class FabricResult:
    """One fabric run's measured window, across every layer."""

    spec: FabricSpec
    measure_seconds: float
    flows: Dict[str, FlowResult]
    nics: List[ThroughputResult]
    aggregate_goodput_gbps: float
    switch_forwarded: int
    switch_drops: int
    mac_drops: int
    fault_counters: Dict[str, float] = field(default_factory=dict)
    #: Per-traffic-class report (scheduler, per-class goodput/latency/
    #: drop/pause counters) — ``None`` (and absent from :meth:`to_dict`)
    #: unless the spec carries a QoS config.
    qos: Optional[Dict[str, object]] = None
    #: Composed-topology report (per-link counters, per-switch
    #: forwarding, sharded flow-table summary) — ``None`` (and absent
    #: from :meth:`to_dict`) unless the spec carries a topology.
    topology: Optional[Dict[str, object]] = None

    @property
    def primary_flow(self) -> FlowResult:
        """The headline flow: the first RPC flow if any, else the first."""
        for result in self.flows.values():
            if result.kind == "rpc":
                return result
        return next(iter(self.flows.values()))

    def to_dict(self) -> Dict[str, object]:
        from repro.exp.spec import describe

        out: Dict[str, object] = {
            "spec": describe(self.spec),
            "measure_seconds": self.measure_seconds,
            "flows": {name: f.to_dict() for name, f in self.flows.items()},
            "aggregate_goodput_gbps": self.aggregate_goodput_gbps,
            "switch_forwarded": self.switch_forwarded,
            "switch_drops": self.switch_drops,
            "mac_drops": self.mac_drops,
            "fault_counters": dict(self.fault_counters),
            "nics": [self._nic_dict(nic) for nic in self.nics],
        }
        # QoS runs carry the per-class report; legacy JSON stays
        # byte-identical.
        if self.qos is not None:
            out["qos"] = self.qos
        # Same contract for composed topologies.
        if self.topology is not None:
            out["topology"] = self.topology
        return out

    @staticmethod
    def _nic_dict(nic: ThroughputResult) -> Dict[str, object]:
        out: Dict[str, object] = {
            "tx_frames": nic.tx_frames,
            "rx_frames": nic.rx_frames,
            "tx_payload_bytes": nic.tx_payload_bytes,
            "rx_payload_bytes": nic.rx_payload_bytes,
            "rx_dropped": nic.rx_dropped,
            "core_utilization": nic.core_utilization,
        }
        # Multi-queue runs carry the per-ring/per-core report; legacy
        # single-ring JSON stays byte-identical.
        if nic.rss is not None:
            out["rss"] = nic.rss
        return out


# ----------------------------------------------------------------------
# The simulator
# ----------------------------------------------------------------------
class FabricSimulator:
    """N correlated NIC endpoints behind one deterministic kernel."""

    def __init__(
        self,
        config: NicConfig,
        spec: FabricSpec,
        tracer=None,
        fault_plan: Optional[FaultPlan] = None,
        estimator: str = "streaming",
        fast: bool = False,
        rss: Optional[RssSpec] = None,
    ) -> None:
        spec.flow_names()  # validates uniqueness early
        if estimator not in ESTIMATORS:
            raise ValueError(
                f"estimator must be one of {ESTIMATORS}, got {estimator!r}"
            )
        self.config = config
        self.spec = spec
        #: Batched hot path (CLI ``--fast``): every endpoint runs its rx
        #: pump on a heap-free chained timer and the paced stream flows
        #: arm one too.  Byte-identical to the reference path — the
        #: golden corpus digests both (docs/observability.md).
        self.fast = bool(fast)
        #: Latency-estimator mode: ``"streaming"`` keeps O(buckets)
        #: quantile sketches per flow (the default; docs/observability.md
        #: documents the 10^-3 relative-error bound), ``"exact"`` keeps
        #: every sample for byte-identical results (golden corpus).
        self.estimator = estimator
        #: Multi-queue host interface applied to every endpoint;
        #: ``None`` keeps the paper's single-ring hosts byte-identical.
        self.rss = rss
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.timing = EthernetTiming()
        self.sim = Simulator()
        self.stats = StatRegistry()
        self.endpoints: List[NicEndpoint] = []
        for index in range(spec.nics):
            endpoint_plan = None
            if fault_plan is not None and fault_plan.enabled:
                # Distinct decision streams per endpoint, reproducibly
                # derived from the plan seed and the fabric salt.
                endpoint_plan = dataclasses.replace(
                    fault_plan, seed=fault_plan.seed + spec.seed + index
                )
            endpoint_tracer = (
                PrefixedTracer(self.tracer, f"nic{index}/")
                if self.tracer.enabled
                else NULL_TRACER
            )
            self.endpoints.append(
                NicEndpoint(
                    config,
                    fabric=self,
                    index=index,
                    tracer=endpoint_tracer,
                    fault_plan=endpoint_plan,
                    fast=self.fast,
                    rss=rss,
                )
            )
        self.wire = FabricWire(self, spec)
        #: Sharded per-flow-tuple state (``None`` without a topology).
        #: Shard placement uses the same keyed hash as ECMP routing, so
        #: a flow's record lives where its path decisions are drawn.
        self.flow_table: Optional[FlowTable] = (
            FlowTable(
                shards=spec.topology.flow_shards,
                seed=spec.topology.ecmp_seed,
            )
            if spec.topology is not None
            else None
        )
        self.flows: Dict[str, FlowRuntime] = build_runtimes(self)
        #: Per-class accounting + PFC pause routing (``None`` without a
        #: QoS config; constructing it also stamps every flow's
        #: ``_qos_tag`` so posted frames carry their class).
        self.qos_runtime: Optional[QosRuntime] = (
            QosRuntime(self) if spec.qos is not None else None
        )
        self.mac_drops = 0
        self._started = False

    # ------------------------------------------------------------------
    # Wire/endpoint callbacks
    # ------------------------------------------------------------------
    def frame_delivered(self, frame: FabricFrame, now_ps: int) -> None:
        self.flows[frame.flow].on_delivered(frame, now_ps)
        if self.flow_table is not None:
            self.flow_table.record_delivery(
                frame.flow,
                frame.src,
                frame.dst,
                (now_ps - frame.created_ps) / 1e6,
                frame.udp_payload_bytes,
            )
        if self.qos_runtime is not None:
            self.qos_runtime.on_delivered(frame, now_ps)

    def qos_pause(self, port: int, cls: int, now_ps: int) -> None:
        """Wire XOFF: the class queue on ``port`` crossed its watermark."""
        self.qos_runtime.pause(port, cls, now_ps)

    def qos_resume(self, port: int, cls: int, now_ps: int) -> None:
        """Wire XON: the class queue drained to its resume watermark."""
        self.qos_runtime.resume(port, cls, now_ps)

    def frame_lost(self, frame: FabricFrame, now_ps: int, reason: str) -> None:
        if reason == "mac_overrun":
            self.mac_drops += 1
        self.stats.counter(f"fabric.lost.{reason}").add()
        if self.flow_table is not None:
            self.flow_table.record_loss(frame.flow, frame.src, frame.dst)
        self.flows[frame.flow].on_lost(frame, now_ps)

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for endpoint in self.endpoints:
            endpoint.start()
        for flow in self.flows.values():
            self.sim.schedule(0, flow.start)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Fabric-level registry view (flow latency histograms, loss
        counters) merged with per-NIC snapshots under ``nic<i>.``."""
        values = dict(self.stats.snapshot())
        for index, endpoint in enumerate(self.endpoints):
            for name, value in endpoint.metrics_snapshot().items():
                values[f"nic{index}.{name}"] = value
        values["counter.fabric.switch_drops"] = float(self.wire.drops)
        values["counter.fabric.switch_forwarded"] = float(self.wire.forwarded)
        return values

    # ------------------------------------------------------------------
    def run(self, warmup_s: float = 0.2e-3, measure_s: float = 0.5e-3) -> FabricResult:
        if warmup_s < 0 or measure_s <= 0:
            raise ValueError("need non-negative warmup and positive measure window")
        warmup_ps = round(warmup_s * 1e12)
        measure_ps = round(measure_s * 1e12)
        self.start()
        self.sim.run(until_ps=warmup_ps)
        nic_snaps = [endpoint._snapshot() for endpoint in self.endpoints]
        flow_snaps = {name: flow.window_snapshot() for name, flow in self.flows.items()}
        wire_snap = self.wire.window_snapshot()
        qos_snap = (
            self.qos_runtime.window_snapshot()
            if self.qos_runtime is not None else None
        )
        topo_snap = self.wire.topology_window_snapshot()
        table_snap = (
            self.flow_table.window_snapshot()
            if self.flow_table is not None else None
        )
        # Measured-window registry semantics: histograms restart so the
        # percentile snapshots (and the metrics sampler) exclude cold
        # warm-up samples.
        self.stats.reset_window(self.sim.now_ps, histograms=True)
        if self.flow_table is not None:
            self.flow_table.reset_window(self.sim.now_ps)
        self.sim.run(until_ps=warmup_ps + measure_ps)
        return self._build_result(
            nic_snaps, flow_snaps, wire_snap, measure_ps, qos_snap,
            topo_snap, table_snap,
        )

    # ------------------------------------------------------------------
    def _build_result(
        self,
        nic_snaps,
        flow_snaps: Dict[str, Dict[str, int]],
        wire_snap: Dict[str, int],
        measure_ps: int,
        qos_snap: Optional[Dict[str, object]] = None,
        topo_snap: Optional[Dict[str, List[int]]] = None,
        table_snap: Optional[Dict[str, int]] = None,
    ) -> FabricResult:
        measure_seconds = ps_to_seconds(measure_ps)
        flow_results: Dict[str, FlowResult] = {}
        for name, flow in self.flows.items():
            snap = flow_snaps[name]
            payload = flow.delivered_payload_bytes - snap["delivered_payload_bytes"]
            result = FlowResult(
                name=name,
                kind=flow.kind,
                delivered=flow.delivered - snap["delivered"],
                lost=flow.lost - snap["lost"],
                retransmits=flow.retransmitted - snap["retransmitted"],
                delivered_payload_bytes=payload,
                goodput_gbps=payload * 8 / measure_seconds / 1e9,
                oneway=flow.oneway_summary(snap["oneway_index"]),
            )
            if isinstance(flow, RpcFlowRuntime):
                result.completed = flow.completed - snap["completed"]
                result.rtt = flow.rtt_summary(snap["rtt_index"])
            flow_results[name] = result
        nic_results = [
            endpoint._build_result(snap, measure_ps)
            for endpoint, snap in zip(self.endpoints, nic_snaps)
        ]
        aggregate = sum(result.goodput_gbps for result in flow_results.values())
        fault_counters: Dict[str, float] = {}
        for nic in nic_results:
            for key, value in (nic.fault_counters or {}).items():
                fault_counters[key] = fault_counters.get(key, 0.0) + value
        return FabricResult(
            spec=self.spec,
            measure_seconds=measure_seconds,
            flows=flow_results,
            nics=nic_results,
            aggregate_goodput_gbps=aggregate,
            switch_forwarded=self.wire.forwarded - wire_snap["forwarded"],
            switch_drops=self.wire.drops - wire_snap["drops"],
            mac_drops=sum(
                endpoint._rx_dropped - snap["rx_dropped"]
                for endpoint, snap in zip(self.endpoints, nic_snaps)
            ),
            fault_counters=fault_counters,
            qos=(
                self.qos_runtime.build_result(qos_snap, measure_ps)
                if self.qos_runtime is not None and qos_snap is not None
                else None
            ),
            topology=(
                self._topology_report(topo_snap or {}, table_snap or {})
                if self.spec.topology is not None
                else None
            ),
        )

    def _topology_report(
        self,
        topo_snap: Dict[str, List[int]],
        table_snap: Dict[str, int],
    ) -> Dict[str, object]:
        """Measured-window per-link / per-switch / flow-table report."""
        topo = self.spec.topology
        per_link: Dict[str, Dict[str, int]] = {}
        for key in sorted(self.wire.link_counts):
            entered, forwarded, dropped = self.wire.link_counts[key]
            base = topo_snap.get(key, [0, 0, 0])
            per_link[key] = {
                "entered": entered - base[0],
                "forwarded": forwarded - base[1],
                "dropped": dropped - base[2],
            }
        per_switch: Dict[str, int] = {}
        for key, counts in per_link.items():
            switch = key.split("->", 1)[0]
            per_switch[switch] = per_switch.get(switch, 0) + counts["forwarded"]
        if not table_snap:
            table_snap = {"delivered": 0, "lost": 0, "payload_bytes": 0}
        return {
            "switches": len(topo.switches),
            "links": 2 * len(topo.switch_links) + len(topo.host_links),
            "hop_bound": self.wire.router.hop_bound(),
            "per_link": per_link,
            "per_switch": {name: per_switch[name] for name in sorted(per_switch)},
            "flow_table": self.flow_table.summary(table_snap),
        }
