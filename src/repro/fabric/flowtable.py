"""Sharded flow-state table: bounded-memory stats for ~10⁵–10⁶ flows.

The pre-topology fabric kept flow state in one per-simulator dict of
:class:`~repro.fabric.flows.FlowRuntime` objects — fine for a handful
of declared flows, hopeless for datacenter-scale runs where the *flow
population* is the workload (Wu et al.'s transport-friendly-NIC
argument: per-shard flow-state partitioning is the prerequisite for
scaling the host side).  A :class:`FlowTable` partitions flow records
across shards by the same keyed blake2b hash that ECMP-routes the flow
(:func:`repro.fabric.topology.ecmp_hash`), so record placement is
deterministic, interleaving-independent, and consistent with the
fabric's path choices.

Each shard holds compact ``__slots__`` counters per flow tuple plus one
:class:`~repro.obs.hist.StreamingHistogram` latency sketch in its own
:class:`~repro.sim.stats.StatRegistry`; cross-shard aggregation goes
through the existing :meth:`StatRegistry.merge_streaming` (bucket-exact
— the shard-merge-equals-unsharded property test pins it).  Memory is
O(flows · record + shards · sketch buckets) — no per-sample state —
which is what the 1024-endpoint scale test's RSS bound enforces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.fabric.topology import ecmp_hash
from repro.obs.hist import StreamingHistogram
from repro.sim.stats import StatRegistry

#: Sketch resolution, shared with the flow runtimes' estimator.
from repro.fabric.flows import LATENCY_SIGNIFICANT_DIGITS, LatencySummary

#: Registry name of each shard's one-way latency sketch.
SKETCH_NAME = "flowtable.oneway_us"

FlowKey = Tuple[str, int, int]


class FlowRecord:
    """Per-flow-tuple counters (one compact record per (flow, src, dst))."""

    __slots__ = ("delivered", "lost", "payload_bytes")

    def __init__(self) -> None:
        self.delivered = 0
        self.lost = 0
        self.payload_bytes = 0


class FlowTable:
    """Flow records partitioned across shards by the ECMP hash."""

    def __init__(
        self,
        shards: int = 8,
        seed: int = 0,
        significant_digits: int = LATENCY_SIGNIFICANT_DIGITS,
    ) -> None:
        if shards < 1:
            raise ValueError("flow table needs at least one shard")
        self.shards = shards
        self.seed = seed
        self.significant_digits = significant_digits
        self._records: List[Dict[FlowKey, FlowRecord]] = [
            {} for _ in range(shards)
        ]
        self.registries: List[StatRegistry] = [
            StatRegistry() for _ in range(shards)
        ]
        self._sketches: List[StreamingHistogram] = [
            registry.streaming_histogram(SKETCH_NAME, significant_digits)
            for registry in self.registries
        ]
        self.delivered = 0
        self.lost = 0
        self.payload_bytes = 0

    # ------------------------------------------------------------------
    def shard_of(self, flow: str, src: int, dst: int) -> int:
        """Deterministic home shard of a flow tuple (the same keyed
        draw that ECMP-routes the tuple, reduced mod the shard count)."""
        return ecmp_hash(self.seed, flow, src, dst) % self.shards

    def _record(self, flow: str, src: int, dst: int) -> FlowRecord:
        shard = self._records[self.shard_of(flow, src, dst)]
        key = (flow, src, dst)
        record = shard.get(key)
        if record is None:
            record = shard[key] = FlowRecord()
        return record

    def record_delivery(
        self, flow: str, src: int, dst: int,
        oneway_us: float, payload_bytes: int,
    ) -> None:
        record = self._record(flow, src, dst)
        record.delivered += 1
        record.payload_bytes += payload_bytes
        self.delivered += 1
        self.payload_bytes += payload_bytes
        self._sketches[self.shard_of(flow, src, dst)].record(oneway_us)

    def record_loss(self, flow: str, src: int, dst: int) -> None:
        self._record(flow, src, dst).lost += 1
        self.lost += 1

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self._records)

    def shard_sizes(self) -> List[int]:
        return [len(shard) for shard in self._records]

    def get(self, flow: str, src: int, dst: int) -> FlowRecord:
        key = (flow, src, dst)
        return self._records[self.shard_of(flow, src, dst)].get(key)

    def merged_registry(self) -> StatRegistry:
        """All shards' sketches folded into one fresh registry via the
        sweep/shard aggregation path (:meth:`StatRegistry.merge_streaming`
        — bucket-exact, so the merged distribution is identical to an
        unsharded ingest of the same samples)."""
        merged = StatRegistry()
        for registry in self.registries:
            merged.merge_streaming(registry)
        return merged

    def merged_oneway(self) -> StreamingHistogram:
        return self.merged_registry().streaming_histogram(
            SKETCH_NAME, self.significant_digits
        )

    # ------------------------------------------------------------------
    # Measurement-window support
    # ------------------------------------------------------------------
    def window_snapshot(self) -> Dict[str, int]:
        return {
            "delivered": self.delivered,
            "lost": self.lost,
            "payload_bytes": self.payload_bytes,
        }

    def reset_window(self, now_ps: int) -> None:
        """Restart every shard's latency sketch at the warm-up boundary
        (the fabric's measured-window registry semantics)."""
        for registry in self.registries:
            registry.reset_window(now_ps, histograms=True)

    def summary(self, snapshot: Dict[str, int]) -> Dict[str, object]:
        """Measured-window report for ``FabricResult.topology``."""
        oneway = LatencySummary.from_streaming(self.merged_oneway())
        return {
            "shards": self.shards,
            "flows": len(self),
            "shard_sizes": self.shard_sizes(),
            "delivered": self.delivered - snapshot["delivered"],
            "lost": self.lost - snapshot["lost"],
            "payload_bytes": self.payload_bytes - snapshot["payload_bytes"],
            "oneway": oneway.to_dict(),
        }


__all__ = ["FlowKey", "FlowRecord", "FlowTable", "SKETCH_NAME"]
