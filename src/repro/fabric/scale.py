"""Datacenter-scale harness: many endpoints, many flows, one wire.

:class:`~repro.fabric.sim.FabricSimulator` instantiates a *full* NIC
model per endpoint — descriptor rings, firmware cores, SDRAM — which is
the right fidelity for tens of endpoints and hopeless for a thousand.
:class:`ScaleFabric` keeps the parts the topology tentpole actually
exercises — the real event kernel, the real
:class:`~repro.fabric.wire.FabricWire` graph forwarding (ECMP, per-link
ports, tail-drop), the real sharded
:class:`~repro.fabric.flowtable.FlowTable` — and replaces each NIC with
a frame source/sink a few machine words wide.  Frames enter the wire
with synthetic MAC timing (:class:`~repro.assists.mac.WireEvent`
stamped at post time) and leave it straight into the flow table.

That trade keeps the scale test honest where it matters (the new graph
code paths run at 1024 endpoints / 10⁵ stateful flows under wall-time
and RSS budgets; see ``tests/test_fabric_scale.py``) without asserting
anything about NIC internals the small-fabric tests already pin.

Everything is deterministic: flow endpoints come from a fixed
arithmetic schedule, batches post on a chained timer, and the wire's
ECMP draws are keyed hashes — two runs of the same ``ScaleFabric``
produce identical counters.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.assists.mac import WireEvent
from repro.fabric.flows import FabricFrame
from repro.fabric.flowtable import FlowTable
from repro.fabric.spec import FabricSpec, StreamFlowSpec
from repro.fabric.topology import TopologySpec
from repro.fabric.wire import FabricWire
from repro.net.ethernet import EthernetTiming
from repro.obs import NULL_TRACER
from repro.sim.kernel import Simulator

#: Large prime stride so consecutive flows land on unrelated
#: destination hosts (and hence racks) without any randomness.
_DST_STRIDE = 7919


class _ScaleEndpoint:
    """A frame sink: delivery goes straight into the flow table."""

    __slots__ = ("fabric", "index", "faults")

    def __init__(self, fabric: "ScaleFabric", index: int) -> None:
        self.fabric = fabric
        self.index = index
        self.faults = None  # the wire's drop path checks for fault hooks

    def rx_arrive(self, frame: FabricFrame, now_ps: int) -> None:
        fabric = self.fabric
        fabric.delivered += 1
        fabric.flow_table.record_delivery(
            frame.flow,
            frame.src,
            frame.dst,
            (now_ps - frame.created_ps) / 1e6,
            frame.udp_payload_bytes,
        )


class ScaleFabric:
    """Graph forwarding + flow table at scale, NIC models elided.

    Duck-types the slice of :class:`~repro.fabric.sim.FabricSimulator`
    the wire consumes (``sim``, ``timing``, ``tracer``, ``endpoints``,
    ``frame_lost``), so :class:`FabricWire` runs unmodified — including
    its monitor hooks when a caller attaches one to ``self.sim`` and
    ``self.wire``.
    """

    def __init__(
        self,
        topology: TopologySpec,
        payload_bytes: int = 256,
        post_batch: int = 64,
        post_interval_ps: int = 500_000,
        port_queue_frames: int = 64,
    ) -> None:
        nics = len(topology.endpoints())
        if nics < 2:
            raise ValueError("scale fabric needs at least two endpoints")
        # The spec's mandatory flow list is a validation artifact here —
        # ScaleFabric generates its own flow population.
        self.spec = FabricSpec(
            nics=nics,
            switch=True,
            topology=topology,
            port_queue_frames=port_queue_frames,
            stream_flows=(StreamFlowSpec(src=0, dst=1, name="seed0"),),
        )
        self.topology = topology
        self.payload_bytes = payload_bytes
        self.post_batch = post_batch
        self.post_interval_ps = post_interval_ps
        self.sim = Simulator()
        self.timing = EthernetTiming()
        self.tracer = NULL_TRACER
        self.endpoints = [_ScaleEndpoint(self, index) for index in range(nics)]
        self.wire = FabricWire(self, self.spec)
        self.flow_table = FlowTable(
            shards=topology.flow_shards, seed=topology.ecmp_seed
        )
        self.posted = 0
        self.delivered = 0
        self.lost = 0
        self._next_flow = 0
        self._flows_total = 0

    # -- wire callbacks -------------------------------------------------
    def frame_lost(self, frame: FabricFrame, now_ps: int, reason: str) -> None:
        self.lost += 1
        self.flow_table.record_loss(frame.flow, frame.src, frame.dst)

    # -- deterministic flow schedule ------------------------------------
    def flow_pair(self, index: int) -> tuple:
        """Source/destination of synthetic flow ``index`` (arithmetic,
        so the schedule is identical across runs and platforms)."""
        nics = self.spec.nics
        src = index % nics
        dst = (index * _DST_STRIDE + 1) % nics
        if dst == src:
            dst = (dst + 1) % nics
        return src, dst

    def _post_batch(self) -> None:
        now_ps = self.sim.now_ps
        end = min(self._next_flow + self.post_batch, self._flows_total)
        for index in range(self._next_flow, end):
            src, dst = self.flow_pair(index)
            frame = FabricFrame(
                flow=f"f{index}",
                src=src,
                dst=dst,
                udp_payload_bytes=self.payload_bytes,
                kind="stream",
                request_id=index,
                created_ps=now_ps,
            )
            wire_end = now_ps + self.timing.frame_time_ps(frame.frame_bytes)
            self.wire.transmit(
                src,
                frame,
                WireEvent(
                    seq=index,
                    wire_start_ps=now_ps,
                    wire_end_ps=wire_end,
                    sdram_done_ps=wire_end,
                ),
            )
            self.posted += 1
        self._next_flow = end
        if end < self._flows_total:
            self.sim.schedule_at(now_ps + self.post_interval_ps, self._post_batch)

    # -- driver ---------------------------------------------------------
    def run(self, flows: int) -> Dict[str, object]:
        """Post ``flows`` one-frame flows on the batch timer, drain the
        kernel, and report conservation-checkable totals."""
        if flows < 1:
            raise ValueError("need at least one flow")
        self._flows_total = self._next_flow + flows
        self.sim.schedule_at(self.sim.now_ps, self._post_batch)
        self.sim.run()
        table = self.flow_table
        return {
            "endpoints": self.spec.nics,
            "switches": len(self.topology.switches),
            "posted": self.posted,
            "delivered": self.delivered,
            "lost": self.lost,
            "flows": len(table),
            "shard_sizes": table.shard_sizes(),
            "links_used": len(self.wire.link_counts),
            "link_counts": {
                key: list(counts)
                for key, counts in sorted(self.wire.link_counts.items())
            },
        }


__all__ = ["ScaleFabric"]
