"""One NIC inside the fabric: a flow-driven :class:`ThroughputSimulator`.

The standalone simulator drives itself with analytic, uncorrelated
traffic: the driver posts an endless send stream and the MAC receiver
fabricates periodic arrivals.  :class:`NicEndpoint` keeps the entire
firmware/assist/memory pipeline — every handler, lock, ordering board,
and DMA model — but replaces both traffic edges with *correlated* ones:

* **transmit** — frames only exist when a flow posts them
  (:meth:`post_tx`); the driver's frame budget grows per post, and BD
  fetches are sized to what is actually queued (partial batches), so a
  4-frame RPC window does not deadlock waiting for the 16-frame batch
  the saturation workload guarantees.
* **receive** — arrivals come from the wire model
  (:meth:`rx_arrive`), carrying the actual :class:`FabricFrame`
  transmitted by the peer NIC.  Sequence numbers are assigned only to
  *accepted* frames; tail-dropped frames are popped from the pending
  queue (and reported to their flow) without consuming a sequence
  number, so frame identity survives loss.

Per-frame sizes flow through :class:`RecordedSizeModel` — the
refactored simulator reads every size through ``tx_sizes``/``rx_sizes``,
so recording the payload at post/arrival time is all it takes for mixed
request/response sizes to be timed exactly.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Callable, Deque, Dict, Optional, Tuple

from repro.assists.mac import MacReceiver, WireEvent
from repro.fabric.flows import FabricFrame
from repro.firmware.events import EventKind, FrameEvent
from repro.firmware.profiles import (
    BDS_PER_SENT_FRAME,
    SEND_FRAMES_PER_BD_FETCH,
)
from repro.net.ethernet import frame_bytes_for_udp_payload
from repro.net.workload import FrameSizeModel
from repro.nic.throughput import ThroughputSimulator


class RecordedSizeModel(FrameSizeModel):
    """Per-sequence sizes recorded as frames are posted/accepted.

    The nominal payload feeds the mean/line-rate properties (used only
    for result normalization and the initial contention estimate);
    per-frame timing always reads the recorded value.  Looking up an
    unrecorded sequence is a programming error and raises ``KeyError``
    rather than silently substituting the nominal size.
    """

    def __init__(self, nominal_payload_bytes: int = 1472) -> None:
        self._nominal = nominal_payload_bytes
        self._payloads: Dict[int, int] = {}

    def record(self, seq: int, udp_payload_bytes: int) -> None:
        self._payloads[seq] = udp_payload_bytes

    def payload_bytes(self, seq: int) -> int:
        return self._payloads[seq]

    @property
    def mean_payload_bytes(self) -> float:
        return float(self._nominal)

    @property
    def mean_frame_bytes(self) -> float:
        return float(frame_bytes_for_udp_payload(self._nominal))

    @property
    def max_frame_bytes(self) -> int:
        return frame_bytes_for_udp_payload(self._nominal)

    def mean_wire_bytes(self, timing) -> float:
        return float(timing.wire_bytes(frame_bytes_for_udp_payload(self._nominal)))


class FabricMacReceiver(MacReceiver):
    """MAC receive engine fed by the wire model instead of a schedule.

    Pending frames queue as ``(available_ps, frame)`` in arrival order;
    sequence numbers are assigned at acceptance, and
    :meth:`skip_backlog` (called when the receive buffer was full
    across arrival slots) drops expired frames *without* consuming
    sequence numbers — each drop is reported through ``drop_fn`` so the
    owning flow sees the loss.
    """

    def __init__(self, sdram, sdram_clock, timing) -> None:
        super().__init__(sdram, sdram_clock, interarrival_ps=1, timing=timing)
        self._pending: Deque[Tuple[int, FabricFrame]] = deque()
        self.drop_fn: Optional[Callable[[FabricFrame], None]] = None

    # -- wire side ------------------------------------------------------
    def push(self, available_ps: int, frame: FabricFrame) -> None:
        self._pending.append((available_ps, frame))

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def peek_frame(self) -> FabricFrame:
        return self._pending[0][1]

    # -- NIC side -------------------------------------------------------
    def next_arrival_ps(self) -> int:
        return self._pending[0][0]

    def take_frame(self, now_ps: int, frame_bytes: int) -> WireEvent:
        available, frame = self._pending[0]
        if now_ps < available:
            raise ValueError(
                f"frame for seq {self._next_seq} accepted at {now_ps} "
                f"before arrival {available}"
            )
        self._pending.popleft()
        wire_end = max(now_ps, available) + self.timing.frame_time_ps(frame_bytes)
        seq = self._next_seq
        self._next_seq += 1
        self.frames_accepted += 1
        self.bytes_accepted += frame_bytes
        return WireEvent(seq, available, wire_end, wire_end)

    def skip_backlog(self, now_ps: int) -> int:
        dropped = 0
        while self._pending:
            available, frame = self._pending[0]
            if available + self.timing.frame_time_ps(frame.frame_bytes) >= now_ps:
                break
            self._pending.popleft()
            dropped += 1
            if self.drop_fn is not None:
                self.drop_fn(frame)
        return dropped

    def offered_frames(self, start_ps: int, end_ps: int) -> int:
        raise ValueError("fabric receiver arrivals come from the wire model")


class NicEndpoint(ThroughputSimulator):
    """A fabric-attached NIC sharing the fabric's event kernel."""

    #: Flow-driven transmit: no frames exist until a flow posts one.
    _driver_max_frames: Optional[int] = 0

    def __init__(self, config, fabric, index: int, **kwargs) -> None:
        kwargs.setdefault("clock_prefix", f"nic{index}/")
        super().__init__(config, udp_payload_bytes=1472, sim=fabric.sim, **kwargs)
        self.fabric = fabric
        self.index = index
        # Per-direction recorded sizes replace the shared analytic model.
        self.tx_sizes = RecordedSizeModel()
        self.rx_sizes = RecordedSizeModel()
        # The wire-fed MAC receiver replaces the analytic one built by
        # the base constructor (which is never started, so the swap has
        # no residue).
        self.mac_rx = FabricMacReceiver(self.sdram, self.sdram_clock, self.timing)
        self.mac_rx.drop_fn = self._mac_tail_drop
        # Frame identity maps, keyed by per-direction sequence number.
        self._tx_frames: Dict[int, FabricFrame] = {}
        self._rx_frames: Dict[int, FabricFrame] = {}
        self._tx_post_seq = 0
        # RSS steering resolved at post time (the frame record may be
        # gone by completion time); keyed by tx sequence number.
        self._tx_ring_cache: Dict[int, int] = {}
        # Correlation hooks into the refactored base pipeline.
        self._tx_wire_hook = self._on_tx_wire
        self._rx_commit_hook = self._on_rx_commit

    # ==================================================================
    # Transmit side: flow -> driver
    # ==================================================================
    def post_tx(self, frame: FabricFrame) -> None:
        """A flow hands one frame to this NIC's host driver."""
        seq = self._tx_post_seq
        self._tx_post_seq += 1
        self.tx_sizes.record(seq, frame.udp_payload_bytes)
        self._tx_frames[seq] = frame
        self.driver.max_frames = self._tx_post_seq
        self._refill_send()
        self._maybe_fetch_send_bds()

    def _maybe_fetch_send_bds(self) -> None:
        # Partial-batch descriptor fetches: the saturation workload
        # always has 16 frames queued, a 4-deep RPC window does not.
        self._refill_send()
        room = (
            self.config.tx_bd_buffer_frames
            - self._tx_bd_onboard
            - self._tx_fetch_inflight
        )
        frames = min(
            self.driver.send_bds_available() // BDS_PER_SENT_FRAME,
            SEND_FRAMES_PER_BD_FETCH,
            room,
        )
        if frames <= 0:
            return
        self._tx_fetch_inflight += frames
        self.driver.consume_send_bds(frames * BDS_PER_SENT_FRAME)
        self._push_event(FrameEvent(EventKind.FETCH_SEND_BD, count=frames))

    def _on_tx_wire(self, seq: int, wire: WireEvent) -> None:
        frame = self._tx_frames.pop(seq)
        self.fabric.wire.transmit(self.index, frame, wire)

    # ==================================================================
    # RSS steering from real flow identities
    # ==================================================================
    @staticmethod
    def _flow_tuple(frame: FabricFrame) -> Tuple[int, int, int, int]:
        # Fabric node ids become addresses, the flow name a stable port:
        # every frame of a flow hashes to the same ring, while request
        # and response directions (swapped src/dst) steer independently.
        port = 0x8000 | (zlib.crc32(frame.flow.encode("ascii")) & 0x7FFF)
        return (
            0x0A00_0000 + frame.src + 1,
            0x0A00_0000 + frame.dst + 1,
            port,
            9999,
        )

    def _tx_ring_for_seq(self, seq: int) -> int:
        ring = self._tx_ring_cache.get(seq)
        if ring is None:
            ring = self.rss_host.ring_for(*self._flow_tuple(self._tx_frames[seq]))
            self._tx_ring_cache[seq] = ring
        return ring

    def _rx_ring_for_seq(self, seq: int) -> int:
        # Called in _commit_rx before the commit hook pops the frame.
        return self.rss_host.ring_for(*self._flow_tuple(self._rx_frames[seq]))

    # ==================================================================
    # Receive side: wire -> driver
    # ==================================================================
    def rx_arrive(self, frame: FabricFrame, available_ps: int) -> None:
        """The wire delivers a frame's first bit at ``available_ps``."""
        self.mac_rx.push(available_ps, frame)
        if not self._rx_pump_active:
            # Same wake protocol the commit path uses: expired backlog
            # is tail-dropped, then the single pump chain restarts.
            self._rx_space_freed()

    def _rx_pump(self) -> None:
        now = self.sim.now_ps
        mac = self.mac_rx
        if not mac.has_pending:
            self._rx_pump_active = False
            return
        frame = mac.peek_frame()
        self.rx_sizes.record(mac._next_seq, frame.udp_payload_bytes)
        frame_size = frame.frame_bytes
        if self._rx_space < frame_size:
            # Buffer full: sleep until space frees (_rx_space_freed);
            # frames whose slot passes meanwhile are dropped there.
            self._rx_pump_active = False
            return
        arrival = mac.next_arrival_ps()
        if arrival > now:
            self._schedule_rx_pump(arrival)
            return
        self._rx_space -= frame_size
        wire = mac.take_frame(now, frame_size)
        self._rx_frames[wire.seq] = frame
        self._assist_touch(self.config.assist_accesses_per_mac_frame)
        if self.tracer.enabled:
            self.tracer.complete(
                "mac-rx",
                f"rx {wire.seq}",
                wire.wire_start_ps,
                wire.wire_end_ps - wire.wire_start_ps,
                seq=wire.seq,
            )
        self.sim.schedule_at(wire.wire_end_ps, lambda s=wire.seq: self._rx_store(s))
        if mac.has_pending:
            self._schedule_rx_pump(max(now, mac.next_arrival_ps()))
        else:
            self._rx_pump_active = False

    def _rx_fault_drop(self, seq: int) -> None:
        # FCS-dropped frames consumed a sequence number (the MAC
        # accepted them before the checksum failed); pop their identity
        # and report the loss before the base recovery bookkeeping.
        frame = self._rx_frames.pop(seq)
        super()._rx_fault_drop(seq)
        self.fabric.frame_lost(frame, self.sim.now_ps, "rx_fcs")

    def _mac_tail_drop(self, frame: FabricFrame) -> None:
        self.fabric.frame_lost(frame, self.sim.now_ps, "mac_overrun")

    def _on_rx_commit(self, seq: int, now_ps: int) -> None:
        frame = self._rx_frames.pop(seq)
        self.fabric.frame_delivered(frame, now_ps)

    # ==================================================================
    # Accounting fixes for flow-driven sequence semantics
    # ==================================================================
    def _outstanding_frames(self) -> int:
        # MAC drops never consumed sequence numbers here, so the base
        # ``- _rx_dropped`` correction would double-count them.
        return (
            (self.driver._next_send_seq - self._tx_done_frames)
            + (self.mac_rx._next_seq - self.board_rx.commit_seq)
        )
