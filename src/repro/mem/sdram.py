"""External GDDR SDRAM frame memory.

Paper Sections 2.3 and 4: frame contents are stored in external graphics
DDR SDRAM (the reference part is Micron's MT44H8M32) behind a 128-bit
internal bus shared by the PCI interface and the MAC.  A 64-bit-wide
GDDR device at 500 MHz transfers two 64-bit words per cycle — 64 Gb/s
peak — and sustains the ~40 Gb/s the four 10 Gb/s frame streams need
because the assists buffer up to two maximum-sized frames and burst them
to consecutive addresses, incurring very few row activations.

Two second-order effects from Section 6.2 are modeled:

* *misaligned accesses* — frames that do not start/end on 8-byte
  boundaries waste masked-off SDRAM bandwidth that "cannot be
  recovered", inflating 39.5 Gb/s of useful traffic to 39.7 Gb/s;
* *latency* — up to 27 memory cycles under bank conflicts; high, but
  harmless for streaming frame data (bandwidth matters, not latency).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.monitor import NULL_MONITOR
from repro.units import align_down, align_up


@dataclass(frozen=True)
class SdramRequest:
    """Completed-transfer timing for one burst."""

    start_cycle: int
    finish_cycle: int
    useful_bytes: int
    transferred_bytes: int
    row_activated: bool

    @property
    def latency_cycles(self) -> int:
        return self.finish_cycle - self.start_cycle


class GddrSdram:
    """Bank-aware bandwidth/latency model for the frame memory."""

    ACCESS_GRANULARITY_BYTES = 8  # one 64-bit device word

    def __init__(
        self,
        frequency_hz: float = 500e6,
        data_width_bits: int = 64,
        banks: int = 8,
        row_bytes: int = 2048,
        row_activate_cycles: int = 12,
        cas_cycles: int = 5,
    ) -> None:
        if banks < 1 or row_bytes < 1:
            raise ValueError("banks and row size must be positive")
        self.frequency_hz = frequency_hz
        self.data_width_bits = data_width_bits
        self.banks = banks
        self.row_bytes = row_bytes
        self.row_activate_cycles = row_activate_cycles
        self.cas_cycles = cas_cycles
        # DDR: two beats per cycle.
        self.bytes_per_cycle = data_width_bits * 2 // 8
        self._open_row = [-1] * banks
        self._bus_free_cycle = 0
        self.useful_bytes = 0
        self.transferred_bytes = 0
        self.wasted_retry_bytes = 0
        self.row_activations = 0
        self.requests = 0
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    # ------------------------------------------------------------------
    def _bank_of(self, address: int) -> int:
        return (address // self.row_bytes) % self.banks

    def _row_of(self, address: int) -> int:
        return address // (self.row_bytes * self.banks)

    def transfer(
        self, address: int, nbytes: int, cycle: int, useful: bool = True
    ) -> SdramRequest:
        """Burst-read or burst-write ``nbytes`` starting at ``address``.

        Reads and writes are symmetric at this modeling level.  The
        transfer is padded out to the 8-byte device granularity on both
        ends; the padding counts as consumed (unrecoverable) bandwidth.

        ``useful=False`` marks a *faulted* burst re-run (fault-injection
        layer): the bus time and transferred bytes are consumed exactly
        as for a good burst, but the payload counts as wasted-retry
        bandwidth instead of useful bytes.
        """
        if nbytes <= 0:
            raise ValueError("transfer size must be positive")
        first = align_down(address, self.ACCESS_GRANULARITY_BYTES)
        last = align_up(address + nbytes, self.ACCESS_GRANULARITY_BYTES)
        padded = last - first

        bank = self._bank_of(address)
        row = self._row_of(address)
        start = max(cycle, self._bus_free_cycle)
        activated = False
        if self._open_row[bank] != row:
            start += self.row_activate_cycles
            self._open_row[bank] = row
            self.row_activations += 1
            activated = True
        burst_cycles = -(-padded // self.bytes_per_cycle)  # ceil
        finish = start + self.cas_cycles + burst_cycles
        self._bus_free_cycle = start + burst_cycles

        if useful:
            self.useful_bytes += nbytes
        else:
            self.wasted_retry_bytes += nbytes
        self.transferred_bytes += padded
        self.requests += 1
        request = SdramRequest(
            start_cycle=start,
            finish_cycle=finish,
            useful_bytes=nbytes,
            transferred_bytes=padded,
            row_activated=activated,
        )
        if self.monitor.enabled:
            self.monitor.sdram_transfer(self, request, cycle, nbytes)
        return request

    # -- bandwidth accounting (Table 4) ----------------------------------
    def peak_bandwidth_bps(self) -> float:
        """64 Gb/s for the 64-bit 500 MHz reference configuration."""
        return self.bytes_per_cycle * 8 * self.frequency_hz

    def consumed_bandwidth_bps(self, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.transferred_bytes * 8 * self.frequency_hz / cycles

    @property
    def misalignment_overhead(self) -> float:
        """Fraction of transferred bytes that were alignment padding."""
        if self.transferred_bytes == 0:
            return 0.0
        return 1.0 - self.useful_bytes / self.transferred_bytes

    @staticmethod
    def misaligned_bytes(address: int, nbytes: int) -> int:
        """Padded size of a transfer, without performing it."""
        first = align_down(address, GddrSdram.ACCESS_GRANULARITY_BYTES)
        last = align_up(address + nbytes, GddrSdram.ACCESS_GRANULARITY_BYTES)
        return last - first
