"""Shared instruction memory.

Paper Section 4: "Instructions are stored in a single 128 KB instruction
memory which feeds per-processor instruction caches."  The memory has a
128-bit port (Figure 6), so one I-cache line fill of 32 bytes takes two
port transfers; the fill latency seen by a stalled core also includes
the request/response traversal.

Table 4 reports this port idle "almost 97% of the time", which the
bandwidth accounting here reproduces.
"""

from __future__ import annotations

from repro.units import KIB

PORT_WIDTH_BITS = 128
DEFAULT_CAPACITY = 128 * KIB


class InstructionMemory:
    """Fill server for the per-core instruction caches."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY,
        fill_latency_cycles: int = 6,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if fill_latency_cycles < 1:
            raise ValueError("fill latency must be at least one cycle")
        self.capacity_bytes = capacity_bytes
        self.fill_latency_cycles = fill_latency_cycles
        self._next_free_cycle = 0
        self.fills = 0
        self.bytes_transferred = 0

    def fill(self, line_bytes: int, cycle: int) -> int:
        """Serve one cache-line fill; returns the completion cycle."""
        if line_bytes <= 0:
            raise ValueError("line size must be positive")
        transfers = -(-line_bytes * 8 // PORT_WIDTH_BITS)  # ceil division
        start = max(cycle, self._next_free_cycle)
        done = start + self.fill_latency_cycles + transfers - 1
        self._next_free_cycle = start + transfers
        self.fills += 1
        self.bytes_transferred += line_bytes
        return done

    def peak_bandwidth_bps(self, frequency_hz: float) -> float:
        return PORT_WIDTH_BITS * frequency_hz

    def consumed_bandwidth_bps(self, frequency_hz: float, cycles: int) -> float:
        if cycles <= 0:
            return 0.0
        return self.bytes_transferred * 8 * frequency_hz / cycles

    def port_utilization(self, cycles: int) -> float:
        """Fraction of cycles the 128-bit port moved data."""
        if cycles <= 0:
            return 0.0
        transfers_per_fill = -(-32 * 8 // PORT_WIDTH_BITS)
        return min(1.0, self.fills * transfers_per_fill / cycles)
