"""Banked on-chip scratchpad for control data.

Paper Section 4: "Firmware and assist control data is stored in the
on-chip scratchpad, which has a capacity of 256 KB and is separated into
S independent banks.  The scratchpad is globally visible to all
processors and hardware assist units."

The scratchpad owns the backing :class:`~repro.isa.machine.Memory`
(shared with the functional cores so firmware data is literally the same
bytes) plus the bank/crossbar timing.  Words are interleaved across
banks at word granularity, which spreads the firmware's mostly-streaming
metadata accesses evenly.

The scratchpad is also where the paper's ``setb``/``update``
instructions execute their atomic read-modify-write: the bank performs
the whole operation in its single access slot, which is why the
instructions are atomic without locking the crossbar.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.check.monitor import NULL_MONITOR
from repro.isa.machine import Memory, apply_setb, apply_update
from repro.mem.crossbar import Crossbar, TOTAL_ACCESS_LATENCY
from repro.units import KIB


@dataclass(frozen=True)
class ScratchpadAccess:
    """Timing outcome of one scratchpad transaction."""

    bank: int
    request_cycle: int
    grant_cycle: int
    data_cycle: int

    @property
    def conflict_wait(self) -> int:
        return self.grant_cycle - self.request_cycle

    @property
    def latency(self) -> int:
        return self.data_cycle - self.request_cycle


class Scratchpad:
    """S-banked scratchpad behind a word-wide crossbar."""

    def __init__(
        self,
        banks: int = 4,
        capacity_bytes: int = 256 * KIB,
        memory: Optional[Memory] = None,
        base_address: int = 0,
    ) -> None:
        if banks < 1:
            raise ValueError("scratchpad needs at least one bank")
        if capacity_bytes % (4 * banks):
            raise ValueError("capacity must divide evenly across banks")
        self.banks = banks
        self.capacity_bytes = capacity_bytes
        self.base_address = base_address
        self.memory = memory if memory is not None else Memory(capacity_bytes)
        self.crossbar = Crossbar(banks)
        self.accesses = 0
        self.conflict_cycles = 0
        self.rmw_ops = 0
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    # -- addressing ------------------------------------------------------
    def bank_of(self, address: int) -> int:
        """Bank holding ``address`` (word-interleaved)."""
        self._check_range(address)
        return ((address - self.base_address) >> 2) % self.banks

    def _check_range(self, address: int) -> None:
        if not self.base_address <= address < self.base_address + self.capacity_bytes:
            raise ValueError(
                f"address {address:#x} outside scratchpad window "
                f"[{self.base_address:#x}, "
                f"{self.base_address + self.capacity_bytes:#x})"
            )

    # -- timing ----------------------------------------------------------
    def access(self, address: int, requester: int, cycle: int) -> ScratchpadAccess:
        """Arbitrate one word transaction and return its timing.

        The paper's minimum latency is 2 cycles (crossbar + bank); bank
        conflicts add waiting cycles on top.
        """
        bank = self.bank_of(address)
        grant = self.crossbar.request(bank, requester, cycle)
        self.accesses += 1
        self.conflict_cycles += grant - cycle
        result = ScratchpadAccess(
            bank=bank,
            request_cycle=cycle,
            grant_cycle=grant,
            data_cycle=grant + TOTAL_ACCESS_LATENCY,
        )
        if self.monitor.enabled:
            self.monitor.scratchpad_access(self, result)
        return result

    # -- data (functional view shared with the ISA machine) --------------
    def load_word(self, address: int) -> int:
        self._check_range(address)
        return self.memory.load_word(address - self.base_address)

    def store_word(self, address: int, value: int) -> None:
        self._check_range(address)
        self.memory.store_word(address - self.base_address, value)

    def setb(self, base_address: int, index: int) -> None:
        """Atomic bit set, executed inside the bank's access slot."""
        self._check_range(base_address)
        apply_setb(self.memory, base_address - self.base_address, index)
        self.rmw_ops += 1

    def update(self, base_address: int, last: int) -> int:
        """Atomic consecutive-bit harvest (see :func:`apply_update`)."""
        self._check_range(base_address)
        result = apply_update(self.memory, base_address - self.base_address, last)
        self.rmw_ops += 1
        return result

    # -- capacity/bandwidth stats ----------------------------------------
    def peak_bandwidth_bps(self, frequency_hz: float) -> float:
        """Aggregate peak bandwidth: one 32-bit word per bank per cycle."""
        return self.banks * 32 * frequency_hz

    def consumed_bandwidth_bps(self, frequency_hz: float, cycles: int) -> float:
        """Average consumed bandwidth over ``cycles`` of operation."""
        if cycles <= 0:
            return 0.0
        return self.accesses * 32 * frequency_hz / cycles
