"""Trace-driven MESI cache-coherence simulator (the Figure 3 study).

The paper evaluates whether per-processor coherent caches could replace
the scratchpad.  Metadata access traces from a 6-core frame-parallel run
are fed through SMPCache with fully-associative LRU caches, 16-byte
lines (to avoid false sharing), and a MESI protocol, sweeping cache size
from 16 B to 32 KB.  The collective hit ratio never exceeds ~55%, and
fewer than 1% of writes invalidate another cache — i.e., caching fails
for *lack of locality*, not for coherence overhead.

This module is a faithful, self-contained replacement for SMPCache's
role in that experiment.  Like SMPCache it supports at most 8 caches,
which is why DMA-assist traces are interleaved into one cache and MAC
traces into another before analysis.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

MAX_CACHES = 8


class MesiState(enum.Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


@dataclass(frozen=True)
class TraceAccess:
    """One memory reference by one cache's owner."""

    cache_id: int
    address: int
    is_write: bool


@dataclass
class CoherenceStats:
    """Aggregate results of one trace run."""

    hits: int = 0
    misses: int = 0
    reads: int = 0
    writes: int = 0
    invalidations_caused_by_writes: int = 0
    write_accesses_causing_invalidation: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def write_invalidation_ratio(self) -> float:
        """Fraction of write accesses that invalidated another cache."""
        if self.writes == 0:
            return 0.0
        return self.write_accesses_causing_invalidation / self.writes


class _Cache:
    """One fully-associative LRU cache; values are MESI states."""

    def __init__(self, capacity_lines: int) -> None:
        self.capacity_lines = capacity_lines
        self.lines: "OrderedDict[int, MesiState]" = OrderedDict()

    def get(self, line: int) -> MesiState:
        state = self.lines.get(line, MesiState.INVALID)
        if state is not MesiState.INVALID:
            self.lines.move_to_end(line)
        return state

    def put(self, line: int, state: MesiState) -> bool:
        """Install/refresh a line; returns True if a dirty line was evicted."""
        evicted_dirty = False
        if line not in self.lines and len(self.lines) >= self.capacity_lines:
            _victim, victim_state = self.lines.popitem(last=False)
            evicted_dirty = victim_state is MesiState.MODIFIED
        self.lines[line] = state
        self.lines.move_to_end(line)
        return evicted_dirty

    def drop(self, line: int) -> None:
        self.lines.pop(line, None)


class CoherentCacheSystem:
    """N private MESI caches over one shared backing store."""

    def __init__(
        self,
        cache_count: int,
        cache_size_bytes: int,
        line_bytes: int = 16,
    ) -> None:
        if not 1 <= cache_count <= MAX_CACHES:
            raise ValueError(
                f"cache count must be in [1, {MAX_CACHES}] "
                f"(SMPCache's limit, preserved here), got {cache_count}"
            )
        if line_bytes <= 0 or cache_size_bytes < line_bytes:
            raise ValueError("cache must hold at least one line")
        self.cache_count = cache_count
        self.cache_size_bytes = cache_size_bytes
        self.line_bytes = line_bytes
        capacity_lines = cache_size_bytes // line_bytes
        self.caches: List[_Cache] = [_Cache(capacity_lines) for _ in range(cache_count)]
        self.stats = CoherenceStats()

    # ------------------------------------------------------------------
    def _line_of(self, address: int) -> int:
        return address // self.line_bytes

    def _other_holders(self, line: int, me: int) -> List[int]:
        holders = []
        for cache_id, cache in enumerate(self.caches):
            if cache_id != me and cache.lines.get(line, MesiState.INVALID) is not MesiState.INVALID:
                holders.append(cache_id)
        return holders

    def access(self, access: TraceAccess) -> bool:
        """Run one reference through the protocol; returns True on hit."""
        if not 0 <= access.cache_id < self.cache_count:
            raise ValueError(f"no cache {access.cache_id}")
        line = self._line_of(access.address)
        cache = self.caches[access.cache_id]
        state = cache.get(line)
        if access.is_write:
            self.stats.writes += 1
        else:
            self.stats.reads += 1

        if not access.is_write:
            if state is not MesiState.INVALID:
                self.stats.hits += 1
                return True
            # Read miss: load Shared if others hold it, else Exclusive.
            self.stats.misses += 1
            holders = self._other_holders(line, access.cache_id)
            if holders:
                for holder in holders:
                    holder_cache = self.caches[holder]
                    if holder_cache.lines[line] is MesiState.MODIFIED:
                        self.stats.writebacks += 1
                    holder_cache.lines[line] = MesiState.SHARED
                new_state = MesiState.SHARED
            else:
                new_state = MesiState.EXCLUSIVE
            if cache.put(line, new_state):
                self.stats.writebacks += 1
            return False

        # Write path.
        if state in (MesiState.MODIFIED, MesiState.EXCLUSIVE):
            cache.lines[line] = MesiState.MODIFIED
            self.stats.hits += 1
            return True
        if state is MesiState.SHARED:
            # Upgrade: hit, but must invalidate other sharers.
            invalidated = self._invalidate_others(line, access.cache_id)
            cache.lines[line] = MesiState.MODIFIED
            self.stats.hits += 1
            if invalidated:
                self.stats.write_accesses_causing_invalidation += 1
            return True
        # Write miss (read-for-ownership).
        self.stats.misses += 1
        invalidated = self._invalidate_others(line, access.cache_id)
        if cache.put(line, MesiState.MODIFIED):
            self.stats.writebacks += 1
        if invalidated:
            self.stats.write_accesses_causing_invalidation += 1
        return False

    def _invalidate_others(self, line: int, me: int) -> int:
        holders = self._other_holders(line, me)
        for holder in holders:
            if self.caches[holder].lines[line] is MesiState.MODIFIED:
                self.stats.writebacks += 1
            self.caches[holder].drop(line)
        count = len(holders)
        self.stats.invalidations_caused_by_writes += count
        return count

    # ------------------------------------------------------------------
    def run_trace(self, trace: Iterable[TraceAccess]) -> CoherenceStats:
        for access in trace:
            self.access(access)
        return self.stats


def sweep_cache_sizes(
    trace: Sequence[TraceAccess],
    cache_count: int,
    sizes_bytes: Iterable[int],
    line_bytes: int = 16,
) -> Dict[int, CoherenceStats]:
    """The Figure 3 sweep: hit ratio vs per-cache size."""
    results: Dict[int, CoherenceStats] = {}
    for size in sizes_bytes:
        system = CoherentCacheSystem(cache_count, size, line_bytes)
        results[size] = system.run_trace(trace)
    return results
