"""The paper's partitioned NIC memory system.

Control data (descriptors, frame metadata, event state) lives in a
multi-banked on-chip scratchpad reached through a 32-bit round-robin
crossbar; instructions live in a shared instruction memory behind
per-core I-caches; frame contents live in external GDDR SDRAM reached
over a separate 128-bit bus.  :mod:`repro.mem.coherence` additionally
provides the trace-driven MESI cache simulator used to justify the
scratchpad over coherent caches (Figure 3).
"""

from repro.mem.coherence import (
    CoherenceStats,
    CoherentCacheSystem,
    MesiState,
    TraceAccess,
    sweep_cache_sizes,
)
from repro.mem.crossbar import Crossbar
from repro.mem.icache import InstructionCache
from repro.mem.imem import InstructionMemory
from repro.mem.scratchpad import Scratchpad
from repro.mem.sdram import GddrSdram, SdramRequest

__all__ = [
    "CoherenceStats",
    "CoherentCacheSystem",
    "sweep_cache_sizes",
    "Crossbar",
    "GddrSdram",
    "InstructionCache",
    "InstructionMemory",
    "MesiState",
    "Scratchpad",
    "SdramRequest",
    "TraceAccess",
]
