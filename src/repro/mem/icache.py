"""Per-core instruction cache.

The evaluated configuration (Section 6.1) gives every core "an 8 KB
2-way set associative instruction cache with 32 byte lines".  Table 3
attributes only 0.01 lost IPC to instruction misses: the firmware's code
footprint is small and the caches capture it "even though tasks migrate
from core to core".
"""

from __future__ import annotations

from typing import List

from repro.units import KIB


class InstructionCache:
    """Set-associative cache with true-LRU replacement."""

    def __init__(
        self,
        capacity_bytes: int = 8 * KIB,
        associativity: int = 2,
        line_bytes: int = 32,
    ) -> None:
        if capacity_bytes <= 0 or associativity <= 0 or line_bytes <= 0:
            raise ValueError("cache geometry values must be positive")
        if capacity_bytes % (associativity * line_bytes):
            raise ValueError(
                f"capacity {capacity_bytes} not divisible by "
                f"{associativity} ways x {line_bytes} B lines"
            )
        self.capacity_bytes = capacity_bytes
        self.associativity = associativity
        self.line_bytes = line_bytes
        self.set_count = capacity_bytes // (associativity * line_bytes)
        # Each set is an LRU-ordered list of tags (most recent last).
        self._sets: List[List[int]] = [[] for _ in range(self.set_count)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int):
        line = address // self.line_bytes
        return line % self.set_count, line // self.set_count

    def lookup(self, address: int) -> bool:
        """Access one instruction address; returns True on hit.

        On a miss the line is installed (the fill itself is timed by the
        caller against :class:`~repro.mem.imem.InstructionMemory`).
        """
        set_index, tag = self._locate(address)
        ways = self._sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(0)
        ways.append(tag)
        return False

    def line_address(self, address: int) -> int:
        return address - (address % self.line_bytes)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def invalidate_all(self) -> None:
        self._sets = [[] for _ in range(self.set_count)]
