"""32-bit crossbar between processors/assists and the scratchpad banks.

The paper's interconnect (Section 4): "The crossbar is 32 bits wide and
allows one transaction to each scratchpad bank and to the external
memory bus interface per cycle with round-robin arbitration for each
resource.  Accessing any scratchpad bank requires a latency of 2 cycles:
one to request and traverse the crossbar and another to access the
memory and return requested data."

Each destination resource accepts one transaction per cycle.  Requests
for a busy resource are pushed to the next free cycle; round-robin
fairness is obtained by the lockstep core model issuing same-cycle
requests in rotating order (see :mod:`repro.cpu.core`), which matches a
rotating-priority arbiter's behaviour.
"""

from __future__ import annotations

from typing import List

CROSSBAR_TRAVERSAL_CYCLES = 1
RESOURCE_ACCESS_CYCLES = 1
TOTAL_ACCESS_LATENCY = CROSSBAR_TRAVERSAL_CYCLES + RESOURCE_ACCESS_CYCLES  # 2


class Crossbar:
    """One-grant-per-resource-per-cycle arbiter."""

    def __init__(self, resource_count: int) -> None:
        if resource_count < 1:
            raise ValueError("crossbar needs at least one resource")
        self.resource_count = resource_count
        self._next_free_cycle: List[int] = [0] * resource_count
        self.grants = 0
        self.conflict_cycles = 0

    def request(self, resource: int, requester: int, cycle: int) -> int:
        """Request one transaction; returns the grant cycle.

        The requester sees its data ``TOTAL_ACCESS_LATENCY`` cycles after
        the grant (one cycle to traverse, one to access).  ``requester``
        is kept for statistics/debugging symmetry with real arbiters.
        """
        if not 0 <= resource < self.resource_count:
            raise ValueError(f"no such resource {resource}")
        if cycle < 0:
            raise ValueError(f"cycle must be non-negative, got {cycle}")
        grant = max(cycle, self._next_free_cycle[resource])
        self.conflict_cycles += grant - cycle
        self._next_free_cycle[resource] = grant + 1
        self.grants += 1
        return grant

    def completion_cycle(self, grant_cycle: int) -> int:
        """Cycle at which data is back at the requester."""
        return grant_cycle + TOTAL_ACCESS_LATENCY

    def busy_until(self, resource: int) -> int:
        """First cycle at which the resource could take a new grant."""
        return self._next_free_cycle[resource]
