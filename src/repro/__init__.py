"""repro — reproduction of "An Efficient Programmable 10 Gigabit
Ethernet Network Interface Card" (HPCA 2005).

Public API tour:

* :class:`repro.nic.NicConfig` / :class:`repro.nic.ThroughputSimulator`
  — configure and run full-system throughput experiments (Figures 7/8,
  Tables 3-6).
* :class:`repro.nic.MicroNic` — run real assembled MIPS firmware on the
  cycle-level multi-core model.
* :mod:`repro.isa` — the MIPS-subset ISA with the paper's ``setb`` /
  ``update`` atomic instructions: assembler, interpreter, traces.
* :mod:`repro.ilp` — the offline IPC-limit study (Table 2).
* :mod:`repro.mem` — scratchpad/crossbar, caches, SDRAM, and the MESI
  coherence simulator (Figure 3).
* :mod:`repro.firmware` — frame-level parallel firmware: event queue,
  ordering boards, assembly kernels.
* :mod:`repro.analysis` — one generator per paper table/figure.
"""

from repro.nic import (
    MicroNic,
    NicConfig,
    RMW_166MHZ,
    SOFTWARE_200MHZ,
    ThroughputResult,
    ThroughputSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "MicroNic",
    "NicConfig",
    "RMW_166MHZ",
    "SOFTWARE_200MHZ",
    "ThroughputResult",
    "ThroughputSimulator",
    "__version__",
]
