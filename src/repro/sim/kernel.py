"""Event-driven simulation kernel.

Time is a global integer picosecond counter.  Each :class:`ClockDomain`
maps that global time base onto its own cycle counter, so modules that
logically live in different domains (cores at 166/200 MHz, SDRAM at
500 MHz, the Ethernet bit clock) can interact without rounding drift.

Events scheduled for the same picosecond run in (priority, insertion
order), which gives deterministic simulations — a property the test
suite relies on heavily.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.check.monitor import NULL_MONITOR
from repro.units import cycle_time_ps


@dataclass(frozen=True)
class Event:
    """Handle for a scheduled callback.

    The kernel hands one back from :meth:`Simulator.schedule`; holding on
    to it allows cancellation.  Equality is identity-based on the ticket
    number so duplicate (time, callback) pairs stay distinct.
    """

    time_ps: int
    priority: int
    ticket: int


class ClockDomain:
    """A named clock with its own frequency.

    Provides conversions between global picosecond time and local cycle
    counts, and cycle-aligned scheduling helpers.
    """

    def __init__(self, name: str, frequency_hz: float) -> None:
        self.name = name
        self.frequency_hz = frequency_hz
        self.period_ps = cycle_time_ps(frequency_hz)

    def cycles_to_ps(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds."""
        return round(cycles * self.period_ps)

    def ps_to_cycles(self, time_ps: int) -> float:
        """Express a picosecond duration in (fractional) cycles."""
        return time_ps / self.period_ps

    def current_cycle(self, now_ps: int) -> int:
        """Number of full cycles elapsed at global time ``now_ps``."""
        return now_ps // self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Global time of the next rising edge at or after ``now_ps``."""
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + self.period_ps - remainder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockDomain({self.name!r}, {self.frequency_hz / 1e6:.1f} MHz)"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        core_clk = sim.add_clock("core", mhz(166))
        sim.schedule(core_clk.cycles_to_ps(10), lambda: ...)
        sim.run(until_ps=seconds_to_ps(1e-3))
    """

    def __init__(self) -> None:
        self.now_ps: int = 0
        self.clocks: Dict[str, ClockDomain] = {}
        self._queue: List[tuple] = []
        self._tickets = itertools.count()
        self._cancelled: set = set()
        self._live: set = set()  # tickets physically present in the heap
        self._stopped = False
        self.events_processed = 0
        self._profiler = None  # duck-typed: .record(callback, wall_seconds)
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR

    # ------------------------------------------------------------------
    # Clock management
    # ------------------------------------------------------------------
    def add_clock(self, name: str, frequency_hz: float) -> ClockDomain:
        """Register (or fetch, if identical) a clock domain."""
        existing = self.clocks.get(name)
        if existing is not None:
            if existing.frequency_hz != frequency_hz:
                raise ValueError(
                    f"clock {name!r} already registered at "
                    f"{existing.frequency_hz} Hz, not {frequency_hz} Hz"
                )
            return existing
        domain = ClockDomain(name, frequency_hz)
        self.clocks[name] = domain
        return domain

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay_ps: int,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` after ``delay_ps`` picoseconds.

        Lower ``priority`` runs first among events at the same instant.
        """
        if delay_ps < 0:
            raise ValueError(f"cannot schedule in the past (delay {delay_ps})")
        ticket = next(self._tickets)
        when = self.now_ps + delay_ps
        heapq.heappush(self._queue, (when, priority, ticket, callback))
        self._live.add(ticket)
        if self.monitor.enabled:
            self.monitor.event_scheduled(ticket, when, self.now_ps)
        return Event(when, priority, ticket)

    def schedule_at(
        self,
        time_ps: int,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` at absolute global time ``time_ps``."""
        return self.schedule(time_ps - self.now_ps, callback, priority)

    def schedule_cycles(
        self,
        clock: ClockDomain,
        cycles: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` after ``cycles`` cycles of ``clock``."""
        return self.schedule(clock.cycles_to_ps(cycles), callback, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling a fired event is a no-op.

        Only tickets still physically present in the heap are recorded:
        a fired (or already-cancelled-and-popped) ticket never re-enters
        the queue, so adding it to ``_cancelled`` would leak the entry
        forever and silently degrade :attr:`pending_events` from O(1) to
        O(n) for the rest of the simulation.
        """
        if event.ticket in self._live:
            if self.monitor.enabled:
                self.monitor.event_cancelled(event.ticket)
            self._cancelled.add(event.ticket)

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attribute each callback's host wall time to ``profiler``.

        ``profiler`` needs one method, ``record(callback, wall_seconds)``
        (see :class:`repro.obs.profiler.SimProfiler`).  Profiling never
        alters simulated time or event order — only host-side cost.
        Pass ``None`` to detach.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue empties, when simulated time would pass
        ``until_ps``, when ``max_events`` callbacks have run, or when a
        callback calls :meth:`stop`.  Returns the number of events
        processed during this call.
        """
        self._stopped = False
        processed = 0
        profiler = self._profiler
        monitor = self.monitor
        while self._queue:
            if self._stopped:
                break
            if max_events is not None and processed >= max_events:
                break
            when, _priority, ticket, callback = self._queue[0]
            if until_ps is not None and when > until_ps:
                # Clamp instead of assigning unconditionally: a caller
                # passing ``until_ps < now_ps`` must not move simulated
                # time backwards (the drained-queue path below already
                # guards the same way).
                self.now_ps = max(self.now_ps, until_ps)
                break
            heapq.heappop(self._queue)
            self._live.discard(ticket)
            if ticket in self._cancelled:
                self._cancelled.discard(ticket)
                if monitor.enabled:
                    monitor.event_discarded(ticket)
                continue
            if monitor.enabled:
                monitor.event_fired(ticket, when, self.now_ps)
            self.now_ps = when
            if profiler is None:
                callback()
            else:
                started = perf_counter()
                callback()
                profiler.record(callback, perf_counter() - started)
            processed += 1
            self.events_processed += 1
        else:
            # Queue drained completely.
            if until_ps is not None and self.now_ps < until_ps:
                self.now_ps = until_ps
        return processed

    def peek_next_time(self) -> Optional[int]:
        """Global time of the next pending event, or None if idle."""
        while self._queue and self._queue[0][2] in self._cancelled:
            _, _, ticket, _ = heapq.heappop(self._queue)
            self._live.discard(ticket)
            self._cancelled.discard(ticket)
            if self.monitor.enabled:
                self.monitor.event_discarded(ticket)
        if not self._queue:
            return None
        return self._queue[0][0]

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued.

        Cancelled events linger in the heap as ghosts until their pop;
        counting them would make observability reports overstate queue
        depth, so they are excluded here.  (Tickets in ``_cancelled``
        that are still in the heap are exactly the ghosts: a fired
        event's ticket never re-enters the queue.)
        """
        if not self._cancelled:
            return len(self._queue)
        cancelled = self._cancelled
        return sum(1 for entry in self._queue if entry[2] not in cancelled)
