"""Event-driven simulation kernel.

Time is a global integer picosecond counter.  Each :class:`ClockDomain`
maps that global time base onto its own cycle counter, so modules that
logically live in different domains (cores at 166/200 MHz, SDRAM at
500 MHz, the Ethernet bit clock) can interact without rounding drift.

Events scheduled for the same picosecond run in (priority, insertion
order), which gives deterministic simulations — a property the test
suite relies on heavily.
"""

from __future__ import annotations

import heapq
import itertools
import math
import operator
from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.check.monitor import NULL_MONITOR
from repro.units import cycle_time_ps


def _coerce_delay(value, what: str = "delay_ps"):
    """Normalize a scheduling delay/timestamp to a built-in ``int``.

    Heap keys must stay homogeneous: a float ``delay_ps`` would produce
    a float ``when`` that compares against int keys and then leaks into
    ``now_ps`` the moment the event fires, silently turning every
    downstream timestamp into a float.  Whole-valued floats (and any
    ``__index__``-able integer type, e.g. ``numpy.int64``) are accepted
    and converted; fractional values are rejected loudly.
    """
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise TypeError(
            f"{what} must be a whole number of picoseconds, got {value!r}"
        )
    try:
        return operator.index(value)
    except TypeError:
        raise TypeError(
            f"{what} must be an integer picosecond count, got "
            f"{type(value).__name__} {value!r}"
        ) from None


@dataclass(frozen=True)
class Event:
    """Handle for a scheduled callback.

    The kernel hands one back from :meth:`Simulator.schedule`; holding on
    to it allows cancellation.  Equality is identity-based on the ticket
    number so duplicate (time, callback) pairs stay distinct.
    """

    time_ps: int
    priority: int
    ticket: int


class ClockDomain:
    """A named clock with its own frequency.

    Provides conversions between global picosecond time and local cycle
    counts, and cycle-aligned scheduling helpers.
    """

    def __init__(self, name: str, frequency_hz: float) -> None:
        self.name = name
        self.frequency_hz = frequency_hz
        self.period_ps = cycle_time_ps(frequency_hz)

    def cycles_to_ps(self, cycles: float) -> int:
        """Duration of ``cycles`` clock cycles, in picoseconds.

        Rounding policy: **round half up**.  Costs landing exactly on a
        half picosecond always round to the *later* picosecond, for any
        clock.  Python's built-in ``round`` (banker's rounding, half to
        even) is deliberately not used: it rounds half-cycle costs to
        the nearest even picosecond, so two otherwise-symmetric
        configurations whose costs straddle an odd/even boundary drift
        apart by ±1 ps — an invisible asymmetry that a vectorized fast
        path would have baked in.  Durations are non-negative, so
        ``floor(x + 0.5)`` implements the policy exactly.
        """
        return math.floor(cycles * self.period_ps + 0.5)

    def ps_to_cycles(self, time_ps: int) -> float:
        """Express a picosecond duration in (fractional) cycles."""
        return time_ps / self.period_ps

    def current_cycle(self, now_ps: int) -> int:
        """Number of full cycles elapsed at global time ``now_ps``."""
        return now_ps // self.period_ps

    def next_edge(self, now_ps: int) -> int:
        """Global time of the next rising edge at or after ``now_ps``."""
        remainder = now_ps % self.period_ps
        if remainder == 0:
            return now_ps
        return now_ps + self.period_ps - remainder

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClockDomain({self.name!r}, {self.frequency_hz / 1e6:.1f} MHz)"


class Simulator:
    """The event loop.

    Usage::

        sim = Simulator()
        core_clk = sim.add_clock("core", mhz(166))
        sim.schedule(core_clk.cycles_to_ps(10), lambda: ...)
        sim.run(until_ps=seconds_to_ps(1e-3))
    """

    def __init__(self) -> None:
        self.now_ps: int = 0
        self.clocks: Dict[str, ClockDomain] = {}
        self._queue: List[tuple] = []
        self._tickets = itertools.count()
        self._cancelled: set = set()
        self._live: set = set()  # tickets physically present in the heap
        self._stopped = False
        self.events_processed = 0
        self._profiler = None  # duck-typed: .record(callback, wall_seconds)
        #: Invariant monitor (null by default; see ``repro.check``).
        self.monitor = NULL_MONITOR
        # Active batched event sources (see ``repro.sim.batch``).  The
        # run loop merges them with the heap by (time, priority, tie
        # ticket); an empty list keeps the classic path branch-cheap.
        self._batch_sources: List = []
        self._batch_scheduler = None

    # ------------------------------------------------------------------
    # Clock management
    # ------------------------------------------------------------------
    def add_clock(self, name: str, frequency_hz: float) -> ClockDomain:
        """Register (or fetch, if identical) a clock domain."""
        existing = self.clocks.get(name)
        if existing is not None:
            if existing.frequency_hz != frequency_hz:
                raise ValueError(
                    f"clock {name!r} already registered at "
                    f"{existing.frequency_hz} Hz, not {frequency_hz} Hz"
                )
            return existing
        domain = ClockDomain(name, frequency_hz)
        self.clocks[name] = domain
        return domain

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay_ps: int,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` after ``delay_ps`` picoseconds.

        Lower ``priority`` runs first among events at the same instant.
        ``delay_ps`` must be a whole number of picoseconds: whole-valued
        floats and ``__index__``-able integers (e.g. ``numpy.int64``)
        are normalized to ``int`` at this boundary, fractional values
        raise ``TypeError`` (see :func:`_coerce_delay`).
        """
        if type(delay_ps) is not int:
            delay_ps = _coerce_delay(delay_ps)
        if delay_ps < 0:
            raise ValueError(f"cannot schedule in the past (delay {delay_ps})")
        ticket = next(self._tickets)
        when = self.now_ps + delay_ps
        heapq.heappush(self._queue, (when, priority, ticket, callback))
        self._live.add(ticket)
        if self.monitor.enabled:
            self.monitor.event_scheduled(ticket, when, self.now_ps)
        return Event(when, priority, ticket)

    def schedule_at(
        self,
        time_ps: int,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` at absolute global time ``time_ps``."""
        return self.schedule(time_ps - self.now_ps, callback, priority)

    def schedule_cycles(
        self,
        clock: ClockDomain,
        cycles: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Run ``callback`` after ``cycles`` cycles of ``clock``."""
        return self.schedule(clock.cycles_to_ps(cycles), callback, priority)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event.  Cancelling a fired event is a no-op.

        Only tickets still physically present in the heap are recorded:
        a fired (or already-cancelled-and-popped) ticket never re-enters
        the queue, so adding it to ``_cancelled`` would leak the entry
        forever and silently degrade :attr:`pending_events` from O(1) to
        O(n) for the rest of the simulation.
        """
        if event.ticket in self._live:
            if self.monitor.enabled:
                self.monitor.event_cancelled(event.ticket)
            self._cancelled.add(event.ticket)
            # Opportunistic ghost compaction: once cancelled entries
            # dominate the heap, one O(n) rebuild reclaims them all —
            # the same work ``peek_next_time``'s pruning loop does at
            # the head, applied to the whole queue.  Amortized O(1) per
            # cancel, and it keeps cancel-heavy runs from dragging a
            # heap full of dead weight through every push and pop.
            if len(self._cancelled) > 64 and \
                    2 * len(self._cancelled) > len(self._queue):
                self._compact_ghosts()

    def _compact_ghosts(self) -> None:
        """Drop every cancelled entry from the heap in one pass.

        Mutates ``_queue`` in place (slice assignment) so any local
        alias held by a running ``run()`` loop stays valid.
        """
        cancelled = self._cancelled
        if self.monitor.enabled:
            for ticket in cancelled:
                self.monitor.event_discarded(ticket)
        self._queue[:] = [
            entry for entry in self._queue if entry[2] not in cancelled
        ]
        heapq.heapify(self._queue)
        self._live.difference_update(cancelled)
        cancelled.clear()

    def stop(self) -> None:
        """Stop the event loop after the current callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Batched fast path
    # ------------------------------------------------------------------
    @property
    def batch(self):
        """The :class:`repro.sim.batch.BatchScheduler` for this kernel.

        Factory for batched event sources (chained timers, periodic
        chunk streams) that drain through this same run loop — see
        ``repro.sim.batch`` for the conformance rules.
        """
        if self._batch_scheduler is None:
            from repro.sim.batch import BatchScheduler

            self._batch_scheduler = BatchScheduler(self)
        return self._batch_scheduler

    def _activate_source(self, source) -> None:
        if source not in self._batch_sources:
            self._batch_sources.append(source)

    def _deactivate_source(self, source) -> None:
        try:
            self._batch_sources.remove(source)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------
    def attach_profiler(self, profiler) -> None:
        """Attribute each callback's host wall time to ``profiler``.

        ``profiler`` needs one method, ``record(callback, wall_seconds)``
        (see :class:`repro.obs.profiler.SimProfiler`).  Profiling never
        alters simulated time or event order — only host-side cost.
        Pass ``None`` to detach.
        """
        self._profiler = profiler

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until_ps: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Stops when the queue empties, when simulated time would pass
        ``until_ps``, when ``max_events`` callbacks have run, or when a
        callback calls :meth:`stop`.  Returns the number of events
        processed during this call.
        """
        self._stopped = False
        processed = 0
        profiler = self._profiler
        monitor = self.monitor
        queue = self._queue
        while queue or self._batch_sources:
            if self._stopped:
                break
            if max_events is not None and processed >= max_events:
                break
            # Pick the next due dispatcher: the heap head or the
            # earliest batch source, ordered by (time, priority, tie
            # ticket).  ChainedTimer carries a real kernel ticket, so
            # its ties resolve exactly as the heap chain it replaces;
            # BatchSource carries an infinite tie rank, so same-instant
            # heap events always run first.
            source = None
            if self._batch_sources:
                sources = self._batch_sources
                source = sources[0]
                source_key = (
                    source.next_time_ps, source.priority, source.tie_ticket
                )
                for other in sources[1:]:
                    other_key = (
                        other.next_time_ps, other.priority, other.tie_ticket
                    )
                    if other_key < source_key:
                        source, source_key = other, other_key
                limit_key = None
                if queue:
                    head = queue[0]
                    head_key = (head[0], head[1], head[2])
                    if head_key < source_key:
                        source = None
                    else:
                        limit_key = head_key
            if source is not None:
                when = source.next_time_ps
                if until_ps is not None and when > until_ps:
                    self.now_ps = max(self.now_ps, until_ps)
                    break
                # The drain horizon is the next pending event anywhere
                # else — heap head or a later batch source.
                for other in self._batch_sources:
                    if other is not source:
                        other_key = (
                            other.next_time_ps, other.priority,
                            other.tie_ticket,
                        )
                        if limit_key is None or other_key < limit_key:
                            limit_key = other_key
                budget = (
                    None if max_events is None else max_events - processed
                )
                fired = source.drain(limit_key, until_ps, budget)
                processed += fired
                self.events_processed += fired
                continue
            when, _priority, ticket, callback = queue[0]
            if until_ps is not None and when > until_ps:
                # Clamp instead of assigning unconditionally: a caller
                # passing ``until_ps < now_ps`` must not move simulated
                # time backwards (the drained-queue path below already
                # guards the same way).
                self.now_ps = max(self.now_ps, until_ps)
                break
            heapq.heappop(queue)
            self._live.discard(ticket)
            if ticket in self._cancelled:
                self._cancelled.discard(ticket)
                if monitor.enabled:
                    monitor.event_discarded(ticket)
                continue
            if monitor.enabled:
                monitor.event_fired(ticket, when, self.now_ps)
            self.now_ps = when
            if profiler is None:
                callback()
            else:
                started = perf_counter()
                callback()
                profiler.record(callback, perf_counter() - started)
            processed += 1
            self.events_processed += 1
        else:
            # Queue and batch sources drained completely.
            if until_ps is not None and self.now_ps < until_ps:
                self.now_ps = until_ps
        return processed

    def peek_next_time(self) -> Optional[int]:
        """Global time of the next pending event, or None if idle."""
        while self._queue and self._queue[0][2] in self._cancelled:
            _, _, ticket, _ = heapq.heappop(self._queue)
            self._live.discard(ticket)
            self._cancelled.discard(ticket)
            if self.monitor.enabled:
                self.monitor.event_discarded(ticket)
        best = self._queue[0][0] if self._queue else None
        for source in self._batch_sources:
            when = source.next_time_ps
            if best is None or when < best:
                best = when
        return best

    @property
    def pending_events(self) -> int:
        """Number of *live* events still queued — O(1).

        Cancelled events linger in the heap as ghosts until their pop
        (or a compaction); counting them would make observability
        reports overstate queue depth, so they are excluded.  The count
        is an exact subtraction rather than a scan: ``cancel()`` only
        records tickets still physically in the heap and every pop or
        compaction removes the ticket from both structures, so
        ``_cancelled`` is always a subset of the heap's tickets.
        Active batch sources report their remaining quanta on top.
        """
        pending = len(self._queue) - len(self._cancelled)
        for source in self._batch_sources:
            pending += source.pending
        return pending
