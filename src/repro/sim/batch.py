"""Batched event sources: the kernel's vectorized fast path.

The reference kernel dispatches one Python callback per event through a
binary heap.  That is exact but slow: homogeneous event streams — frame
arrivals at a fixed gap, paced flow injections, per-frame charge loops —
pay a heap push, a heap pop, a tuple allocation and a Python call for
every quantum even though every quantum looks the same.  The paper's
original simulator compiled exactly these loops into Spinach/LSE
modules; this module is the Python equivalent: precompute the timestamp
array once (numpy ``int64`` when available, plain integer sequences
otherwise) and drain *runs* of events in vectorized chunks, falling back
to one-at-a-time dispatch whenever exactness demands it.

Two source flavours plug into :meth:`repro.sim.Simulator.run`'s merge
loop:

:class:`ChainedTimer`
    A ticket-faithful, heap-free replacement for the classic
    self-rescheduling callback chain (``schedule_at(next, self._pump)``
    as the last statement of ``_pump``).  ``arm()`` allocates a real
    ticket from the kernel's counter at exactly the program point the
    reference chain would have called ``schedule_at``, so
    ``(time, priority, ticket)`` tie-breaking — and therefore the entire
    event order — is *identical* to the reference path.  This is what
    makes golden-trace byte-identity provable rather than probable.

:class:`BatchSource`
    A precomputed stream of event times drained in maximal runs that fit
    strictly before the next pending heap event (or other source).  With
    a ``chunk_fn`` and no invariant monitor attached, a run of N quanta
    costs one ``searchsorted`` and one Python call instead of N heap
    operations — the ≥10x engine.  Same-instant ties against heap events
    always go to the heap (the source behaves as if its events were
    scheduled last), a deterministic rule that holds whether or not a
    monitor is attached.

Conformance rules the kernel relies on:

* A chunk's callbacks run with ``now_ps`` already advanced to the last
  quantum of the chunk; anything they ``schedule`` lands at or after
  that instant (delays are non-negative), so no event can be missed
  inside an already-drained window.
* When an invariant monitor is enabled, every source degrades to
  one-event-per-drain dispatch with per-event tickets, so ticket
  conservation (scheduled == fired + discarded + live) is checked on
  the fast path too.
* When numpy is missing, ``BatchSource`` runs the same logic over plain
  integer sequences (``range`` for periodic streams) via ``bisect`` —
  slower, but bit-identical.
"""

from __future__ import annotations

import bisect
import operator
from time import perf_counter
from typing import Callable, Optional, Sequence

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

#: Quanta materialized per window for periodic sources; bounds memory at
#: ~512 KiB of timestamps regardless of the stream's total length.
DEFAULT_WINDOW = 65536

#: Tie-break sentinel for :class:`BatchSource`: compares greater than
#: any real ticket, so same-(time, priority) heap events always win.
TIE_LOSER = float("inf")


def _as_time_ps(value, what: str = "time_ps") -> int:
    """Normalize a timestamp to a built-in ``int`` (see kernel policy)."""
    if type(value) is int:
        return value
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        raise TypeError(
            f"{what} must be a whole number of picoseconds, got {value!r}"
        )
    try:
        return operator.index(value)
    except TypeError:
        raise TypeError(
            f"{what} must be an integer picosecond count, got "
            f"{type(value).__name__} {value!r}"
        ) from None


class ChainedTimer:
    """Single-slot, ticket-faithful timer for self-rescheduling chains.

    Replaces the ``schedule_at(when, fn)`` / pop / fire cycle of a
    callback chain with one mutable slot: ``arm(when_ps)`` where the
    chain would have scheduled, and the kernel fires ``fn`` at exactly
    the time, priority and ticket order the heap would have produced.
    The callback may re-arm the timer (the slot is freed before ``fn``
    runs), exactly like a reference chain scheduling its successor.
    """

    __slots__ = (
        "sim", "fn", "priority", "label",
        "next_time_ps", "tie_ticket", "armed", "fired",
    )

    def __init__(self, sim, fn: Callable[[], None], priority: int = 0,
                 label: Optional[str] = None) -> None:
        self.sim = sim
        self.fn = fn
        self.priority = priority
        self.label = label or getattr(fn, "__name__", "timer")
        self.next_time_ps = 0
        self.tie_ticket = 0
        self.armed = False
        self.fired = 0

    @property
    def pending(self) -> int:
        return 1 if self.armed else 0

    def arm(self, time_ps: int) -> None:
        """Schedule the next firing at absolute time ``time_ps``.

        Allocates a kernel ticket immediately — the same side effect a
        reference ``schedule_at`` call would have — so tie-breaking
        against heap events is byte-identical to the chain it replaces.
        """
        sim = self.sim
        if type(time_ps) is not int:
            time_ps = _as_time_ps(time_ps)
        if time_ps < sim.now_ps:
            raise ValueError(
                f"cannot arm in the past ({time_ps} < now {sim.now_ps})"
            )
        if self.armed:
            raise RuntimeError(f"timer {self.label!r} is already armed")
        ticket = next(sim._tickets)
        self.next_time_ps = time_ps
        self.tie_ticket = ticket
        self.armed = True
        sim._activate_source(self)
        if sim.monitor.enabled:
            sim.monitor.event_scheduled(ticket, time_ps, sim.now_ps)

    def cancel(self) -> None:
        """Disarm without firing.  Idempotent."""
        if not self.armed:
            return
        self.armed = False
        self.sim._deactivate_source(self)
        if self.sim.monitor.enabled:
            self.sim.monitor.event_cancelled(self.tie_ticket)
            self.sim.monitor.event_discarded(self.tie_ticket)

    # -- kernel protocol ----------------------------------------------
    def drain(self, limit_key, until_ps, budget) -> int:
        """Fire the armed slot once.  The kernel guaranteed we are due."""
        sim = self.sim
        when = self.next_time_ps
        ticket = self.tie_ticket
        # Free the slot *before* the callback so it can re-arm, exactly
        # like a reference chain scheduling its successor from inside
        # the fired callback.
        self.armed = False
        sim._deactivate_source(self)
        monitor = sim.monitor
        if monitor.enabled:
            monitor.event_fired(ticket, when, sim.now_ps)
        sim.now_ps = when
        self.fired += 1
        fn = self.fn
        profiler = sim._profiler
        if profiler is None:
            fn()
        else:
            started = perf_counter()
            fn()
            profiler.record(fn, perf_counter() - started)
        return 1


class BatchSource:
    """A precomputed event stream drained in vectorized chunks.

    Construct via :class:`BatchScheduler` (``periodic`` / ``at_times``).
    Exactly one of two consumers must be provided:

    ``chunk_fn(start_index, times)``
        Called once per drained run with the global index of the first
        quantum and the (sorted) timestamp view — a numpy ``int64``
        array when numpy is available, a plain sequence otherwise.
        ``now_ps`` is already at the last quantum of the run.

    ``fn(index, time_ps)``
        Called once per quantum with ``now_ps`` advanced per event —
        no vectorization, but still no heap traffic.

    If both are given, ``chunk_fn`` is used whenever no invariant
    monitor is attached and ``fn`` on the conformance path.
    """

    __slots__ = (
        "sim", "priority", "label", "tie_ticket", "next_time_ps",
        "_fn", "_chunk_fn", "_times", "_base", "_cursor",
        "_consumed", "_total", "_start_ps", "_period_ps", "_window_size",
    )

    def __init__(self, sim, *, fn=None, chunk_fn=None, priority: int = 0,
                 label: Optional[str] = None, times=None,
                 start_ps: Optional[int] = None,
                 period_ps: Optional[int] = None,
                 count: Optional[int] = None,
                 window: int = DEFAULT_WINDOW) -> None:
        if fn is None and chunk_fn is None:
            raise ValueError("provide fn= and/or chunk_fn=")
        self.sim = sim
        self.priority = priority
        self._fn = fn
        self._chunk_fn = chunk_fn
        self.tie_ticket = TIE_LOSER
        self._consumed = 0
        self._base = 0
        self._cursor = 0
        if times is not None:
            if start_ps is not None or period_ps is not None or count is not None:
                raise ValueError("pass either times= or a periodic spec, not both")
            normalized = [_as_time_ps(t) for t in times]
            if not normalized:
                raise ValueError("times must be non-empty")
            if any(b < a for a, b in zip(normalized, normalized[1:])):
                raise ValueError("times must be sorted (non-decreasing)")
            if normalized[0] < sim.now_ps:
                raise ValueError(
                    f"first event at {normalized[0]} precedes now "
                    f"({sim.now_ps})"
                )
            self._times = (
                _np.asarray(normalized, dtype=_np.int64)
                if _np is not None else normalized
            )
            self._total = len(normalized)
            self._start_ps = None
            self._period_ps = None
            self._window_size = self._total
            self.label = label or "at-times"
        else:
            start_ps = _as_time_ps(start_ps, "start_ps")
            period_ps = _as_time_ps(period_ps, "period_ps")
            if period_ps < 1:
                raise ValueError(f"period_ps must be >= 1, got {period_ps}")
            if count is None or count < 1:
                raise ValueError(f"count must be >= 1, got {count}")
            if start_ps < sim.now_ps:
                raise ValueError(
                    f"first event at {start_ps} precedes now ({sim.now_ps})"
                )
            self._total = count
            self._start_ps = start_ps
            self._period_ps = period_ps
            self._window_size = max(1, window)
            self._times = None
            self.label = label or "periodic"
            self._load_window()
        self.next_time_ps = int(self._times[0])
        sim._activate_source(self)

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Quanta not yet fired (across all future windows)."""
        return self._total - self._consumed

    @property
    def exhausted(self) -> bool:
        return self._consumed >= self._total

    def close(self) -> None:
        """Drop all remaining quanta and detach from the kernel."""
        self._consumed = self._total
        self.sim._deactivate_source(self)

    # ------------------------------------------------------------------
    def _load_window(self) -> None:
        """Materialize the next window of a periodic stream."""
        done = self._consumed
        n = min(self._window_size, self._total - done)
        start = self._start_ps + self._period_ps * done
        if _np is not None:
            self._times = start + self._period_ps * _np.arange(
                n, dtype=_np.int64
            )
        else:
            # ``range`` is a real sequence: O(1) indexing/slicing and
            # bisect-compatible, so the fallback stays O(log n) too.
            self._times = range(
                start, start + n * self._period_ps, self._period_ps
            )
        self._base = done
        self._cursor = 0

    def _advance(self) -> None:
        """Move past the cursor; refill or detach when a window empties."""
        if self._cursor >= len(self._times):
            if self._consumed >= self._total:
                self.sim._deactivate_source(self)
                return
            self._load_window()
        self.next_time_ps = int(self._times[self._cursor])

    # -- kernel protocol ----------------------------------------------
    def drain(self, limit_key, until_ps, budget) -> int:
        sim = self.sim
        monitor = sim.monitor
        if monitor.enabled or self._chunk_fn is None:
            return self._drain_one(sim, monitor)
        times = self._times
        i = self._cursor
        hi = len(times)
        if limit_key is not None:
            limit_time = limit_key[0]
            # Our tie rank against the next pending event: win ties only
            # when strictly higher priority (TIE_LOSER never wins).
            if (self.priority, self.tie_ticket) < (limit_key[1], limit_key[2]):
                hi = _search_right(times, limit_time, i)
            else:
                hi = _search_left(times, limit_time, i)
        if until_ps is not None:
            hi = min(hi, _search_right(times, until_ps, i))
        if budget is not None and budget < hi - i:
            hi = i + budget
        if hi <= i:
            # The kernel only calls drain when our head event is due;
            # the cuts above can never exclude it.
            hi = i + 1
        view = times[i:hi]
        start_index = self._base + i
        count = hi - i
        self._cursor = hi
        self._consumed += count
        self._advance()
        # Advance the clock to the end of the run *before* dispatch:
        # anything the consumer schedules lands at or after this
        # instant, so no event can be missed inside the drained window.
        sim.now_ps = int(times[hi - 1])
        chunk_fn = self._chunk_fn
        profiler = sim._profiler
        if profiler is None:
            chunk_fn(start_index, view)
        else:
            started = perf_counter()
            chunk_fn(start_index, view)
            profiler.record(chunk_fn, perf_counter() - started)
        return count

    def _drain_one(self, sim, monitor) -> int:
        """Conformance path: one quantum, per-event ticket accounting."""
        times = self._times
        i = self._cursor
        when = int(times[i])
        if monitor.enabled:
            # Allocate a real ticket per quantum so ticket conservation
            # (scheduled == fired + discarded + live) covers the fast
            # path.  The ticket is born and fired at the same instant;
            # heap events still win ties via the TIE_LOSER merge rank.
            ticket = next(sim._tickets)
            monitor.event_scheduled(ticket, when, sim.now_ps)
            monitor.event_fired(ticket, when, sim.now_ps)
        index = self._base + i
        self._cursor = i + 1
        self._consumed += 1
        self._advance()
        sim.now_ps = when
        fn = self._fn
        target = fn if fn is not None else self._chunk_fn
        profiler = sim._profiler
        started = perf_counter() if profiler is not None else 0.0
        if fn is not None:
            fn(index, when)
        else:
            self._chunk_fn(index, times[i:i + 1])
        if profiler is not None:
            profiler.record(target, perf_counter() - started)
        return 1


def _search_left(times, value, lo: int) -> int:
    """First index with ``times[i] >= value`` (ghost-free, sorted)."""
    if _np is not None and isinstance(times, _np.ndarray):
        return max(lo, int(_np.searchsorted(times, value, side="left")))
    return bisect.bisect_left(times, value, lo)


def _search_right(times, value, lo: int) -> int:
    """First index with ``times[i] > value``."""
    if _np is not None and isinstance(times, _np.ndarray):
        return max(lo, int(_np.searchsorted(times, value, side="right")))
    return bisect.bisect_right(times, value, lo)


class BatchScheduler:
    """Factory for batched event sources on one :class:`Simulator`.

    Obtain via :attr:`repro.sim.Simulator.batch`; every source it
    creates drains through the owning kernel's ordinary ``run()`` loop,
    so ``until_ps`` / ``max_events`` / ``stop()`` semantics, monitors
    and profilers all keep working.
    """

    def __init__(self, sim) -> None:
        self.sim = sim

    def timer(self, fn: Callable[[], None], priority: int = 0,
              label: Optional[str] = None) -> ChainedTimer:
        """A disarmed :class:`ChainedTimer` bound to this kernel."""
        return ChainedTimer(self.sim, fn, priority, label)

    def periodic(self, start_ps: int, period_ps: int, count: int,
                 fn=None, *, chunk_fn=None, priority: int = 0,
                 label: Optional[str] = None,
                 window: int = DEFAULT_WINDOW) -> BatchSource:
        """``count`` quanta at ``start_ps + k * period_ps``."""
        return BatchSource(
            self.sim, fn=fn, chunk_fn=chunk_fn, priority=priority,
            label=label, start_ps=start_ps, period_ps=period_ps,
            count=count, window=window,
        )

    def at_times(self, times: Sequence[int], fn=None, *, chunk_fn=None,
                 priority: int = 0,
                 label: Optional[str] = None) -> BatchSource:
        """Explicit sorted absolute timestamps (any integer sequence)."""
        return BatchSource(
            self.sim, fn=fn, chunk_fn=chunk_fn, priority=priority,
            label=label, times=times,
        )


__all__ = [
    "BatchScheduler",
    "BatchSource",
    "ChainedTimer",
    "DEFAULT_WINDOW",
    "HAVE_NUMPY",
    "TIE_LOSER",
]
