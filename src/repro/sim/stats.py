"""Statistics primitives used by every hardware model.

The evaluation section of the paper is mostly *accounting*: instructions
per cycle broken into stall categories (Table 3), bandwidth consumed per
memory (Table 4), cycles per packet per function (Table 6).  These
classes centralize that accounting so the table generators read straight
out of a :class:`StatRegistry`.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.hist import StreamingHistogram, rank_bucket
from repro.units import ps_to_seconds

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None


class Counter:
    """A monotonically increasing event counter."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class RateMeter:
    """Tracks a quantity accumulated over simulated time.

    ``rate_per_second`` divides by the *observed window*, so a meter can
    be reset at the end of warm-up and read at the end of the measured
    region — which is how all throughput numbers are produced.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.total = 0.0
        self.window_start_ps = 0

    def add(self, amount: float) -> None:
        self.total += amount

    def reset(self, now_ps: int) -> None:
        self.total = 0.0
        self.window_start_ps = now_ps

    def rate_per_second(self, now_ps: int) -> float:
        elapsed = ps_to_seconds(now_ps - self.window_start_ps)
        if elapsed <= 0:
            return 0.0
        return self.total / elapsed


class Histogram:
    """Fixed-bucket histogram for latencies and batch sizes."""

    def __init__(self, name: str, bucket_bounds: Iterable[float]) -> None:
        self.name = name
        self.bounds: List[float] = sorted(bucket_bounds)
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def record(self, value: float) -> None:
        index = 0
        while index < len(self.bounds) and value > self.bounds[index]:
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def record_many(self, values) -> None:
        """Record a batch of samples in one call (fast-path ingest).

        Equivalent to calling :meth:`record` once per value in order:
        bucket indices replicate the linear scan exactly (``bounds`` is
        sorted, so the scan is a left bisection) and the running ``sum``
        is the same sequential left fold (``sum(..., start)``), so a
        batched ingest is bit-identical to a scalar one.  Values are
        coerced to float, which is what every existing caller records.
        Vectorized with numpy for batches worth the conversion cost;
        otherwise (or without numpy) it falls back to the scalar loop.
        """
        if _np is not None:
            array = _np.asarray(values, dtype=float)
            if array.size == 0:
                return
            if array.size >= 16:
                bounds = self.__dict__.get("_bounds_array")
                if bounds is None:
                    bounds = _np.asarray(self.bounds, dtype=float)
                    self.__dict__["_bounds_array"] = bounds
                indices = _np.searchsorted(bounds, array, side="left")
                for index, count in enumerate(
                    _np.bincount(indices, minlength=len(self.counts))
                ):
                    if count:
                        self.counts[index] += int(count)
                self.total += int(array.size)
                self.sum = sum(array.tolist(), self.sum)
                lo = float(array.min())
                hi = float(array.max())
                self.min = lo if self.min is None else min(self.min, lo)
                self.max = hi if self.max is None else max(self.max, hi)
                return
            values = array.tolist()
        for value in values:
            self.record(float(value))

    def reset(self) -> None:
        """Forget every recorded sample (end-of-warm-up support)."""
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile using bucket upper bounds.

        The cumulative-rank scan is the shared
        :func:`repro.obs.hist.rank_bucket` helper (also behind
        :class:`~repro.obs.hist.StreamingHistogram` and
        :func:`~repro.obs.hist.exact_percentile`)."""
        if not 0 <= fraction <= 1:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.total == 0:
            return 0.0
        index = rank_bucket(self.counts, math.ceil(fraction * self.total))
        if index is not None and index < len(self.bounds):
            return self.bounds[index]
        return self.max if self.max is not None else self.bounds[-1]


class StatRegistry:
    """A namespaced collection of counters/meters/histograms."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.meters: Dict[str, RateMeter] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.streaming: Dict[str, StreamingHistogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def meter(self, name: str) -> RateMeter:
        if name not in self.meters:
            self.meters[name] = RateMeter(name)
        return self.meters[name]

    def histogram(self, name: str, bucket_bounds: Iterable[float]) -> Histogram:
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, bucket_bounds)
        return self.histograms[name]

    def streaming_histogram(
        self, name: str, significant_digits: int = 3
    ) -> StreamingHistogram:
        """A bounded-memory quantile sketch (O(buckets), mergeable;
        see :class:`repro.obs.hist.StreamingHistogram`)."""
        if name not in self.streaming:
            self.streaming[name] = StreamingHistogram(
                significant_digits, name=name
            )
        return self.streaming[name]

    def merge_streaming(self, other: "StatRegistry") -> None:
        """Fold another registry's streaming histograms into this one —
        how sweep workers / fabric shards aggregate per-point latency
        sketches into one cross-run distribution."""
        for name, histogram in other.streaming.items():
            if name in self.streaming:
                self.streaming[name].merge(histogram)
            else:
                self.streaming[name] = histogram.copy()

    def reset_meters(self, now_ps: int) -> None:
        """Restart every rate meter's observation window (end of warm-up)."""
        for meter in self.meters.values():
            meter.reset(now_ps)

    def reset_counters(self) -> None:
        """Zero every counter (end of warm-up)."""
        for counter in self.counters.values():
            counter.reset()

    def reset_window(self, now_ps: int, histograms: bool = False) -> None:
        """End-of-warm-up reset: counters *and* meters restart together,
        so measured-region accounting excludes warm-up events
        consistently.  Pass ``histograms=True`` to also clear recorded
        distributions (e.g. warm-up latency samples)."""
        self.reset_counters()
        self.reset_meters(now_ps)
        if histograms:
            for histogram in self.histograms.values():
                histogram.reset()
            for streaming in self.streaming.values():
                streaming.reset()

    def snapshot(self) -> Dict[str, float]:
        """Flat name → value view of counters, meter totals, and
        histogram summaries (``histogram.<name>.{count,mean,p50,p99,max}``)."""
        values: Dict[str, float] = {}
        for name, counter in self.counters.items():
            values[f"counter.{name}"] = counter.value
        for name, meter in self.meters.items():
            values[f"meter.{name}"] = meter.total
        for name, histogram in self.histograms.items():
            values[f"histogram.{name}.count"] = histogram.total
            values[f"histogram.{name}.mean"] = histogram.mean
            values[f"histogram.{name}.p50"] = histogram.percentile(0.50)
            values[f"histogram.{name}.p99"] = histogram.percentile(0.99)
            values[f"histogram.{name}.max"] = (
                histogram.max if histogram.max is not None else 0.0
            )
        for name, streaming in self.streaming.items():
            for stat, value in streaming.summary().items():
                values[f"shist.{name}.{stat}"] = value
        return values

    def items(self) -> List[Tuple[str, float]]:
        return sorted(self.snapshot().items())
