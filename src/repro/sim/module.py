"""Spinach-style modules and ports.

The paper composes its simulator out of LSE modules that communicate
exclusively through ports.  We keep the same discipline: a
:class:`SimModule` owns local state and exposes :class:`Port` objects;
wiring two ports together is the only sanctioned way for modules to
talk.  A port delivers a message to the peer module after a
caller-specified latency, which is how link/bus/crossbar latencies are
expressed.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.kernel import ClockDomain, Simulator


class Port:
    """One half of a point-to-point connection between modules.

    ``send`` delivers a message to the connected peer's receive handler
    after an optional latency.  Ports are unidirectional; make two for a
    request/response pair.
    """

    def __init__(self, owner: "SimModule", name: str) -> None:
        self.owner = owner
        self.name = name
        self.peer: Optional["Port"] = None
        self._handler: Optional[Callable[[Any], None]] = None
        self.messages_sent = 0
        self.messages_received = 0

    def connect(self, peer: "Port") -> None:
        """Wire this port to ``peer`` (and vice versa)."""
        if self.peer is not None or peer.peer is not None:
            raise ValueError(f"port {self} or {peer} is already connected")
        self.peer = peer
        peer.peer = self

    def on_receive(self, handler: Callable[[Any], None]) -> None:
        """Register the callback invoked when a message arrives here."""
        self._handler = handler

    def send(self, message: Any, latency_ps: int = 0) -> None:
        """Deliver ``message`` to the peer after ``latency_ps``."""
        if self.peer is None:
            raise RuntimeError(f"port {self} is not connected")
        if self.peer._handler is None:
            raise RuntimeError(f"peer port {self.peer} has no receive handler")
        self.messages_sent += 1
        peer = self.peer

        def deliver() -> None:
            peer.messages_received += 1
            peer._handler(message)

        self.owner.sim.schedule(latency_ps, deliver)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.owner.name}.{self.name})"


class SimModule:
    """Base class for all hardware models.

    Subclasses declare ports in ``__init__`` via :meth:`add_port` and
    use ``self.sim`` / ``self.clock`` for scheduling.
    """

    def __init__(self, sim: Simulator, name: str, clock: Optional[ClockDomain] = None) -> None:
        self.sim = sim
        self.name = name
        self.clock = clock
        self.ports: List[Port] = []

    def add_port(self, name: str) -> Port:
        """Create and register a new port on this module."""
        port = Port(self, name)
        self.ports.append(port)
        return port

    def schedule_cycles(self, cycles: float, callback: Callable[[], None], priority: int = 0):
        """Schedule ``callback`` after ``cycles`` of this module's clock."""
        if self.clock is None:
            raise RuntimeError(f"module {self.name} has no clock domain")
        return self.sim.schedule_cycles(self.clock, cycles, callback, priority)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        clock = f", clock={self.clock.name}" if self.clock else ""
        return f"{type(self).__name__}({self.name!r}{clock})"


def connect(a: Port, b: Port) -> None:
    """Convenience wrapper for :meth:`Port.connect`."""
    a.connect(b)
