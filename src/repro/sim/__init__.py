"""Discrete-event simulation kernel with multiple clock domains.

This package plays the role of the Liberty Simulation Environment (LSE)
in the paper: it provides the scheduling substrate on which the NIC's
Spinach-like modules are composed.  Unlike LSE, which evaluates every
module every cycle, the kernel here is event driven — a module is only
activated when an event it scheduled (or a port it listens on) fires.
That choice is what makes sustained 10 Gb/s traffic tractable in Python
while preserving cycle-accurate ordering within each clock domain.

``repro.sim.batch`` is the Python analogue of the paper's compiled
Spinach/LSE modules: homogeneous event streams (frame quanta, paced
injections) are precomputed into timestamp arrays and drained in
vectorized chunks through the same :class:`Simulator` run loop, with a
ticket-faithful chained-timer mode whose event order is provably
byte-identical to the reference heap path.
"""

from repro.sim.batch import BatchScheduler, BatchSource, ChainedTimer
from repro.sim.kernel import ClockDomain, Event, Simulator
from repro.sim.module import Port, SimModule
from repro.sim.stats import Counter, Histogram, RateMeter, StatRegistry

__all__ = [
    "BatchScheduler",
    "BatchSource",
    "ChainedTimer",
    "ClockDomain",
    "Counter",
    "Event",
    "Histogram",
    "Port",
    "RateMeter",
    "SimModule",
    "Simulator",
    "StatRegistry",
]
